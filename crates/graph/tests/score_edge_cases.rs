//! Edge-case coverage for the score post-processing helpers the serving
//! layer leans on: [`dn_graph::approx_bc::top_k_overlap`] (ranking
//! agreement) and [`dn_graph::bc::normalize_scores`] (rescaling raw BC into
//! `[0, 1]`). Both are consumed downstream on arbitrary, possibly
//! degenerate inputs — empty graphs, `k` larger than the node count, score
//! ties — and must never emit NaN.

use dn_graph::approx_bc::top_k_overlap;
use dn_graph::bc::{betweenness_centrality, normalize_scores};
use dn_graph::bipartite::BipartiteBuilder;

// ---------------------------------------------------------------------------
// top_k_overlap
// ---------------------------------------------------------------------------

#[test]
fn overlap_of_empty_slices_is_perfect() {
    // No nodes to disagree about: vacuous agreement, not NaN or a panic.
    assert_eq!(top_k_overlap(&[], &[], 0), 1.0);
    assert_eq!(top_k_overlap(&[], &[], 5), 1.0);
}

#[test]
fn overlap_with_k_zero_is_perfect() {
    let scores = [3.0, 1.0, 2.0];
    assert_eq!(top_k_overlap(&scores, &scores, 0), 1.0);
}

#[test]
fn overlap_with_k_larger_than_n_compares_everything() {
    // k is effectively min(k, n): both top sets are the full index set.
    let a = [3.0, 1.0, 2.0];
    let b = [0.0, 10.0, 5.0];
    assert_eq!(top_k_overlap(&a, &b, 100), 1.0);
    // Still a proper fraction when the orderings disagree on a prefix.
    assert_eq!(top_k_overlap(&a, &b, 1), 0.0);
}

#[test]
fn overlap_with_all_equal_scores_is_deterministic_and_full() {
    // With every score tied, the top-k sets are chosen by index order on
    // both sides (the sort is stable), so agreement is exact at every k.
    let a = [0.5; 8];
    let b = [0.5; 8];
    for k in 0..=9 {
        let overlap = top_k_overlap(&a, &b, k);
        assert_eq!(overlap, 1.0, "k = {k}");
        assert!(overlap.is_finite());
    }
}

#[test]
fn overlap_is_always_a_finite_fraction() {
    let a = [1.0, 0.0, 2.0, 0.0, 5.0];
    let b = [5.0, 2.0, 0.0, 1.0, 0.0];
    for k in 0..=6 {
        let overlap = top_k_overlap(&a, &b, k);
        assert!(
            (0.0..=1.0).contains(&overlap),
            "k = {k} gave overlap {overlap}"
        );
        assert!(!overlap.is_nan());
    }
}

// ---------------------------------------------------------------------------
// normalize_scores
// ---------------------------------------------------------------------------

#[test]
fn normalize_empty_slice_is_a_no_op() {
    let mut scores: Vec<f64> = Vec::new();
    normalize_scores(&mut scores);
    assert!(scores.is_empty());
}

#[test]
fn normalize_tiny_graphs_pins_to_zero() {
    // With n < 3 there are no endpoint pairs excluding the node itself:
    // the scale factor would divide by zero, so the scores are defined as 0
    // rather than NaN or infinity.
    for n in 1..3usize {
        let mut scores = vec![7.0; n];
        normalize_scores(&mut scores);
        assert_eq!(scores, vec![0.0; n], "n = {n}");
    }
}

#[test]
fn normalize_all_equal_scores_keeps_ties_and_stays_finite() {
    let mut scores = vec![4.0; 10];
    normalize_scores(&mut scores);
    let first = scores[0];
    assert!(first > 0.0 && first.is_finite());
    assert!(scores.iter().all(|&s| s == first), "ties must survive");
}

#[test]
fn normalize_real_bc_scores_is_nan_free_and_in_unit_interval() {
    // A star graph: one attribute shared by many values. The hub's raw BC
    // equals the number of unordered value pairs, which normalizes to <= 1.
    let mut b = BipartiteBuilder::new();
    let hub = b.add_attribute("hub");
    for i in 0..12 {
        let v = b.add_value(format!("v{i}"));
        b.add_edge(v, hub);
    }
    let g = b.build();
    let mut scores = betweenness_centrality(&g);
    normalize_scores(&mut scores);
    for (node, &s) in scores.iter().enumerate() {
        assert!(!s.is_nan(), "node {node} normalized to NaN");
        assert!((0.0..=1.0).contains(&s), "node {node} out of range: {s}");
    }
    // The hub bridges every value pair, so it normalizes to exactly 1.
    let hub_node = g.attribute_node(0) as usize;
    assert!((scores[hub_node] - 1.0).abs() < 1e-12);
}

#[test]
fn normalize_zero_scores_stay_zero() {
    let mut scores = vec![0.0; 50];
    normalize_scores(&mut scores);
    assert!(scores.iter().all(|&s| s == 0.0));
    assert!(scores.iter().all(|s| !s.is_nan()));
}
