//! Property-style tests for the graph engine.
//!
//! These exercise the CSR construction, betweenness centrality, and LCC on
//! arbitrary randomly-shaped bipartite graphs and check structural invariants
//! that must hold regardless of topology.
//!
//! Originally written with `proptest`; offline they run the same invariants
//! over a fixed number of seeded random graphs instead, so failures reproduce
//! exactly (the failing seed is in the assertion message).

use dn_graph::approx_bc::{approximate_betweenness, ApproxBcConfig, SamplingStrategy};
use dn_graph::bc::{betweenness_centrality, betweenness_centrality_parallel, normalize_scores};
use dn_graph::bipartite::{BipartiteBuilder, BipartiteGraph};
use dn_graph::components::{components_without_value, connected_components};
use dn_graph::lcc::{local_clustering_coefficients, LccMethod};
use dn_graph::projection::project_values;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Generate a random edge list over up to `max_values` values and `max_attrs`
/// attributes (some nodes may end up isolated).
fn random_graph(max_values: usize, max_attrs: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let nv = rng.gen_range(1..=max_values);
    let na = rng.gen_range(1..=max_attrs);
    let edge_count = rng.gen_range(0..(nv * na).clamp(1, 200));
    let mut b = BipartiteBuilder::new();
    for i in 0..nv {
        b.add_value(format!("v{i}"));
    }
    for a in 0..na {
        b.add_attribute(format!("a{a}"));
    }
    for _ in 0..edge_count {
        let v = rng.gen_range(0..nv);
        let a = rng.gen_range(0..na);
        b.add_edge(v as u32, a as u32);
    }
    b.build()
}

#[test]
fn csr_invariants_hold() {
    for seed in 0..CASES {
        let g = random_graph(30, 8, seed);
        assert!(g.validate().is_ok(), "seed {seed}");
        // Handshake lemma: sum of degrees equals twice the edge count.
        let degree_sum: usize = g.nodes().map(|n| g.degree(n)).sum();
        assert_eq!(degree_sum, 2 * g.edge_count(), "seed {seed}");
    }
}

#[test]
fn bc_is_non_negative_and_symmetric_across_threads() {
    for seed in 0..CASES {
        let g = random_graph(25, 6, seed);
        let seq = betweenness_centrality(&g);
        let par = betweenness_centrality_parallel(&g, 4);
        assert_eq!(seq.len(), g.node_count(), "seed {seed}");
        for (s, p) in seq.iter().zip(&par) {
            assert!(*s >= -1e-12, "seed {seed}");
            assert!((s - p).abs() < 1e-9, "seed {seed}");
        }
    }
}

#[test]
fn degree_one_values_have_zero_bc() {
    for seed in 0..CASES {
        let g = random_graph(25, 6, seed);
        let bc = betweenness_centrality(&g);
        for v in g.value_nodes() {
            if g.degree(v) <= 1 {
                assert!(
                    bc[v as usize].abs() < 1e-12,
                    "degree-{} value has BC {} (seed {seed})",
                    g.degree(v),
                    bc[v as usize]
                );
            }
        }
    }
}

#[test]
fn normalized_bc_is_in_unit_interval() {
    for seed in 0..CASES {
        let g = random_graph(20, 6, seed);
        let mut bc = betweenness_centrality(&g);
        normalize_scores(&mut bc);
        for s in bc {
            assert!((0.0..=1.0 + 1e-12).contains(&s), "seed {seed}");
        }
    }
}

#[test]
fn full_sampling_equals_exact() {
    for seed in 0..CASES {
        let g = random_graph(18, 5, seed);
        if g.node_count() == 0 {
            continue;
        }
        let exact = betweenness_centrality(&g);
        let approx = approximate_betweenness(
            &g,
            ApproxBcConfig {
                samples: g.node_count(),
                strategy: SamplingStrategy::Uniform,
                seed: 1,
            },
            2,
        );
        for (e, a) in exact.iter().zip(&approx) {
            assert!(
                (e - a).abs() < 1e-6,
                "exact {e} vs approx {a} (seed {seed})"
            );
        }
    }
}

#[test]
fn lcc_is_bounded_and_consistent() {
    for seed in 0..CASES {
        let g = random_graph(20, 6, seed);
        for method in [LccMethod::ValueNeighborJaccard, LccMethod::AttributeJaccard] {
            let lcc = local_clustering_coefficients(&g, method);
            assert_eq!(lcc.len(), g.value_count(), "seed {seed}");
            for (v, &score) in lcc.iter().enumerate() {
                assert!((0.0..=1.0 + 1e-12).contains(&score), "seed {seed}");
                if g.value_neighbor_count(v as u32) == 0 {
                    assert_eq!(score, 0.0, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn components_partition_the_nodes() {
    for seed in 0..CASES {
        let g = random_graph(25, 6, seed);
        let comps = connected_components(&g);
        assert_eq!(comps.labels.len(), g.node_count(), "seed {seed}");
        let total: usize = comps.sizes.iter().sum();
        assert_eq!(total, g.node_count(), "seed {seed}");
        // Every edge joins nodes of the same component.
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                assert!(comps.connected(v, w), "seed {seed}");
            }
        }
        // Removing a value never *decreases* the number of components by more
        // than one (the removed node's own singleton possibility).
        if g.value_count() > 0 {
            let without = components_without_value(&g, 0);
            assert!(without + 1 >= comps.count(), "seed {seed}");
        }
    }
}

#[test]
fn projection_degree_matches_value_neighbor_count() {
    for seed in 0..CASES {
        let g = random_graph(20, 5, seed);
        let proj = project_values(&g);
        assert_eq!(proj.node_count(), g.value_count(), "seed {seed}");
        for v in g.value_nodes() {
            assert_eq!(proj.degree(v), g.value_neighbor_count(v), "seed {seed}");
        }
    }
}
