//! Property-based tests for the graph engine.
//!
//! These exercise the CSR construction, betweenness centrality, and LCC on
//! arbitrary randomly-shaped bipartite graphs and check structural invariants
//! that must hold regardless of topology.

use dn_graph::approx_bc::{approximate_betweenness, ApproxBcConfig, SamplingStrategy};
use dn_graph::bc::{betweenness_centrality, betweenness_centrality_parallel, normalize_scores};
use dn_graph::bipartite::{BipartiteBuilder, BipartiteGraph};
use dn_graph::components::{connected_components, components_without_value};
use dn_graph::lcc::{local_clustering_coefficients, LccMethod};
use dn_graph::projection::project_values;
use proptest::prelude::*;

/// Strategy: a random edge list over up to `max_values` values and
/// `max_attrs` attributes (some nodes may end up isolated).
fn arb_graph(max_values: usize, max_attrs: usize) -> impl Strategy<Value = BipartiteGraph> {
    let values = 1..=max_values;
    let attrs = 1..=max_attrs;
    (values, attrs).prop_flat_map(|(nv, na)| {
        let edges = proptest::collection::vec((0..nv, 0..na), 0..(nv * na).min(200));
        edges.prop_map(move |edges| {
            let mut b = BipartiteBuilder::new();
            for i in 0..nv {
                b.add_value(format!("v{i}"));
            }
            for a in 0..na {
                b.add_attribute(format!("a{a}"));
            }
            for (v, a) in edges {
                b.add_edge(v as u32, a as u32);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_invariants_hold(g in arb_graph(30, 8)) {
        prop_assert!(g.validate().is_ok());
        // Handshake lemma: sum of degrees equals twice the edge count.
        let degree_sum: usize = g.nodes().map(|n| g.degree(n)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn bc_is_non_negative_and_symmetric_across_threads(g in arb_graph(25, 6)) {
        let seq = betweenness_centrality(&g);
        let par = betweenness_centrality_parallel(&g, 4);
        prop_assert_eq!(seq.len(), g.node_count());
        for (s, p) in seq.iter().zip(&par) {
            prop_assert!(*s >= -1e-12);
            prop_assert!((s - p).abs() < 1e-9);
        }
    }

    #[test]
    fn degree_one_values_have_zero_bc(g in arb_graph(25, 6)) {
        let bc = betweenness_centrality(&g);
        for v in g.value_nodes() {
            if g.degree(v) <= 1 {
                prop_assert!(bc[v as usize].abs() < 1e-12,
                    "degree-{} value has BC {}", g.degree(v), bc[v as usize]);
            }
        }
    }

    #[test]
    fn normalized_bc_is_in_unit_interval(g in arb_graph(20, 6)) {
        let mut bc = betweenness_centrality(&g);
        normalize_scores(&mut bc);
        for s in bc {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        }
    }

    #[test]
    fn full_sampling_equals_exact(g in arb_graph(18, 5)) {
        let exact = betweenness_centrality(&g);
        if g.node_count() == 0 { return Ok(()); }
        let approx = approximate_betweenness(&g, ApproxBcConfig {
            samples: g.node_count(),
            strategy: SamplingStrategy::Uniform,
            seed: 1,
            threads: 2,
        });
        for (e, a) in exact.iter().zip(&approx) {
            prop_assert!((e - a).abs() < 1e-6, "exact {} vs approx {}", e, a);
        }
    }

    #[test]
    fn lcc_is_bounded_and_consistent(g in arb_graph(20, 6)) {
        for method in [LccMethod::ValueNeighborJaccard, LccMethod::AttributeJaccard] {
            let lcc = local_clustering_coefficients(&g, method);
            prop_assert_eq!(lcc.len(), g.value_count());
            for (v, &score) in lcc.iter().enumerate() {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&score));
                if g.value_neighbor_count(v as u32) == 0 {
                    prop_assert_eq!(score, 0.0);
                }
            }
        }
    }

    #[test]
    fn components_partition_the_nodes(g in arb_graph(25, 6)) {
        let comps = connected_components(&g);
        prop_assert_eq!(comps.labels.len(), g.node_count());
        let total: usize = comps.sizes.iter().sum();
        prop_assert_eq!(total, g.node_count());
        // Every edge joins nodes of the same component.
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                prop_assert!(comps.connected(v, w));
            }
        }
        // Removing a value never *decreases* the number of components by more
        // than one (the removed node's own singleton possibility).
        if g.value_count() > 0 {
            let without = components_without_value(&g, 0);
            prop_assert!(without + 1 >= comps.count());
        }
    }

    #[test]
    fn projection_degree_matches_value_neighbor_count(g in arb_graph(20, 5)) {
        let proj = project_values(&g);
        prop_assert_eq!(proj.node_count(), g.value_count());
        for v in g.value_nodes() {
            prop_assert_eq!(proj.degree(v), g.value_neighbor_count(v));
        }
    }
}
