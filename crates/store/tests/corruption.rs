//! Corruption hardening: every malformed input must produce a typed
//! [`StoreError`] — never a panic, never a half-loaded lake.
//!
//! The cases mirror the ways files actually rot: truncation at arbitrary
//! points (torn writes, full disks), single flipped bytes in every section
//! (bit rot, bad sectors), foreign files (bad magic), and files written by
//! a future release (unsupported version).
//!
//! Temp directories live under `CARGO_TARGET_TMPDIR` and are removed at
//! the end of each test; CI's tempdir-hygiene gate fails if anything is
//! left behind.

use dn_store::snapshot::{
    decode_snapshot, encode_snapshot, read_snapshot, section_table, Manifest,
};
use dn_store::{scan_wal, Store, StoreError, Wal};
use domainnet::{DomainNet, DomainNetBuilder, Measure};
use lake::delta::{LakeDelta, MutableLake};
use lake::table::TableBuilder;
use std::fs;
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dn_store_corruption_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_engine() -> (MutableLake, DomainNet, Vec<Measure>) {
    let mut lake = MutableLake::from_catalog(&lake::fixtures::running_example());
    let mut net = DomainNetBuilder::new().build(&lake);
    let measures = vec![Measure::lcc(), Measure::exact_bc()];
    net.warm_rankings(&measures);
    // A mutation so tombstones, generation, and patched caches are all
    // present in the encoded state.
    let effects = lake
        .apply(
            &LakeDelta::new().remove_table("T2").add_table(
                TableBuilder::new("T9")
                    .column("animal", ["Jaguar", "Okapi", "Zebra"])
                    .build()
                    .unwrap(),
            ),
        )
        .unwrap();
    net.apply_delta(&lake, &effects).unwrap();
    net.warm_rankings(&measures);
    (lake, net, measures)
}

fn sample_snapshot_bytes() -> Vec<u8> {
    let (lake, net, measures) = sample_engine();
    let manifest = Manifest {
        last_seq: 4,
        epoch: 2,
        measures,
    };
    encode_snapshot(&lake, &net, &manifest)
}

#[test]
fn pristine_snapshot_decodes() {
    let bytes = sample_snapshot_bytes();
    decode_snapshot(&bytes).expect("the uncorrupted baseline must load");
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = sample_snapshot_bytes();
    bytes[..8].copy_from_slice(b"NOTASNAP");
    match decode_snapshot(&bytes) {
        Err(StoreError::BadMagic { found, .. }) => assert_eq!(found, b"NOTASNAP"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_format_version_is_typed() {
    let mut bytes = sample_snapshot_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match decode_snapshot(&bytes) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, dn_store::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncation_at_every_region_is_typed_and_panic_free() {
    let bytes = sample_snapshot_bytes();
    let sections = section_table(&bytes).unwrap();
    // Cut points: inside the magic, the version, the section table, at
    // each section boundary, mid-payload of each section, and one byte
    // short of complete.
    let mut cuts = vec![0, 3, 8, 10, 13, 40, bytes.len() - 1];
    for s in &sections {
        cuts.push(s.offset);
        cuts.push(s.offset + s.len / 2);
    }
    for cut in cuts {
        let truncated = &bytes[..cut];
        let err = decode_snapshot(truncated).expect_err("truncated file must not load");
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::SectionCrc { .. }
                    | StoreError::Corrupt { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn flipped_byte_in_each_section_fails_that_sections_crc() {
    let bytes = sample_snapshot_bytes();
    let sections = section_table(&bytes).unwrap();
    assert_eq!(sections.len(), 4);
    for section in &sections {
        for probe in [0, section.len / 2, section.len - 1] {
            let mut corrupted = bytes.clone();
            corrupted[section.offset + probe] ^= 0x40;
            match decode_snapshot(&corrupted) {
                Err(StoreError::SectionCrc { section: name }) => {
                    assert_eq!(name, section.name, "flip at {probe} of {}", section.name)
                }
                other => panic!(
                    "{} flip at {probe}: expected SectionCrc, got {other:?}",
                    section.name
                ),
            }
        }
    }
    // And the original still decodes — the corruption probes copied.
    decode_snapshot(&bytes).unwrap();
}

#[test]
fn flipped_bytes_in_the_header_never_panic() {
    let bytes = sample_snapshot_bytes();
    let header_end = section_table(&bytes).unwrap()[0].offset;
    for pos in 0..header_end {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x01;
        // Any typed error (or, for a benign flip such as a section id that
        // still resolves, even success) is acceptable; panicking is not.
        let _ = decode_snapshot(&corrupted);
    }
}

#[test]
fn read_snapshot_propagates_io_and_corruption_errors() {
    let dir = test_dir("read");
    let missing = dir.join("missing.dnsnap");
    assert!(matches!(
        read_snapshot(&missing).unwrap_err(),
        StoreError::Io { .. }
    ));
    let garbage = dir.join("garbage.dnsnap");
    fs::write(&garbage, b"not a snapshot at all").unwrap();
    assert!(matches!(
        read_snapshot(&garbage).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_never_yields_a_half_loaded_engine() {
    // End to end: a store whose only snapshot is corrupted in the lake
    // section must refuse recovery outright (typed error, no partial
    // state), because there is no older snapshot to fall back to.
    let dir = test_dir("no_partial");
    let (lake, net, measures) = sample_engine();
    let mut store = Store::create(&dir).unwrap();
    store.checkpoint(&lake, &net, 0, &measures).unwrap();
    drop(store);

    let snap_path = dn_store::list_snapshots(&dir).unwrap()[0].1.clone();
    let bytes = fs::read(&snap_path).unwrap();
    let lake_section = *section_table(&bytes)
        .unwrap()
        .iter()
        .find(|s| s.name == "lake")
        .unwrap();
    let mut corrupted = bytes.clone();
    corrupted[lake_section.offset + lake_section.len / 3] ^= 0x10;
    fs::write(&snap_path, &corrupted).unwrap();

    match Store::recover(&dir) {
        Err(StoreError::SectionCrc { section }) => assert_eq!(section, "lake"),
        other => panic!("expected SectionCrc(lake), got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_flip_truncates_replay_at_the_flip() {
    // A flipped byte mid-WAL behaves as a torn tail: recovery applies the
    // intact prefix and truncates the rest, rather than failing or
    // applying garbage.
    let dir = test_dir("wal_flip");
    let (mut lake, mut net, measures) = sample_engine();
    let mut store = Store::create(&dir).unwrap();
    store.checkpoint(&lake, &net, 0, &measures).unwrap();
    let mut good_len = 0;
    for i in 0..3u32 {
        let batch = vec![LakeDelta::new().add_table(
            TableBuilder::new(format!("wal_{i}"))
                .column("c", ["Jaguar", "Panda"])
                .build()
                .unwrap(),
        )];
        store.append_batch(0, &batch).unwrap();
        if i == 1 {
            good_len = 12 + store.wal_record_bytes(); // header + first two records
        }
        let effects = lake.apply_batch(batch.iter()).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        net.warm_rankings(&measures);
    }
    drop(store);

    let wal_path = dir.join("wal.dnlog");
    let mut bytes = fs::read(&wal_path).unwrap();
    let flip_at = good_len as usize + 5; // inside the third record
    bytes[flip_at] ^= 0xFF;
    fs::write(&wal_path, &bytes).unwrap();

    let (_, recovered) = Store::recover(&dir).unwrap();
    assert_eq!(recovered.replayed_batches, 2, "third batch torn away");
    assert!(recovered.lake.table("wal_1").is_some());
    assert!(recovered.lake.table("wal_2").is_none());
    assert_eq!(
        fs::metadata(&wal_path).unwrap().len(),
        good_len,
        "the torn tail was truncated on recovery"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn foreign_wal_is_a_typed_error() {
    let dir = test_dir("foreign_wal");
    let (lake, net, measures) = sample_engine();
    let mut store = Store::create(&dir).unwrap();
    store.checkpoint(&lake, &net, 0, &measures).unwrap();
    drop(store);
    fs::write(dir.join("wal.dnlog"), b"definitely not a wal file").unwrap();
    assert!(matches!(
        Store::recover(&dir).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checksum_valid_but_structurally_impossible_wal_record_is_typed_not_panic() {
    // A record can be bit-intact (CRC passes) yet describe an impossible
    // table — e.g. a column whose row indices point outside its
    // dictionary. Derived serde would deserialize it happily and the
    // replay would later panic on an out-of-bounds index; the scan must
    // instead reject it as typed corruption.
    let dir = test_dir("bad_payload");
    let path = dir.join("wal.dnlog");
    let mut wal = Wal::create(&path).unwrap();
    let batch = vec![
        LakeDelta::new().add_table(TableBuilder::new("t").column("c", ["x"]).build().unwrap())
    ];
    wal.append(1, 0, &batch).unwrap();
    drop(wal);

    // Rewrite the record with indices pointing outside the dictionary,
    // re-deriving a *valid* CRC for the tampered payload.
    let bytes = fs::read(&path).unwrap();
    let header = 12usize; // magic + version
    let rec = &bytes[header..];
    let seq = u64::from_le_bytes(rec[..8].try_into().unwrap());
    let epoch = u64::from_le_bytes(rec[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(rec[16..20].try_into().unwrap()) as usize;
    let payload = std::str::from_utf8(&rec[24..24 + len]).unwrap();
    assert!(payload.contains("\"indices\":[0]"), "payload shape changed");
    let tampered = payload.replace("\"indices\":[0]", "\"indices\":[9]");
    let mut checked = Vec::new();
    checked.extend_from_slice(&seq.to_le_bytes());
    checked.extend_from_slice(&epoch.to_le_bytes());
    checked.extend_from_slice(tampered.as_bytes());
    let crc = dn_store::codec::crc32(&checked);
    let mut rewritten = bytes[..header].to_vec();
    rewritten.extend_from_slice(&seq.to_le_bytes());
    rewritten.extend_from_slice(&epoch.to_le_bytes());
    rewritten.extend_from_slice(&(tampered.len() as u32).to_le_bytes());
    rewritten.extend_from_slice(&crc.to_le_bytes());
    rewritten.extend_from_slice(tampered.as_bytes());
    fs::write(&path, &rewritten).unwrap();

    match scan_wal(&path) {
        Err(StoreError::Corrupt { context }) => {
            assert!(context.contains("record 1"), "{context}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_scan_reports_valid_prefix_lengths() {
    let dir = test_dir("scan");
    let path = dir.join("wal.dnlog");
    let mut wal = Wal::create(&path).unwrap();
    let batch = vec![
        LakeDelta::new().add_table(TableBuilder::new("t").column("c", ["x"]).build().unwrap())
    ];
    wal.append(1, 0, &batch).unwrap();
    let full = wal.len_bytes();
    drop(wal);
    // Every possible truncation of the file scans without panicking, and
    // the valid prefix never exceeds what is actually on disk.
    let bytes = fs::read(&path).unwrap();
    for cut in 0..bytes.len() {
        fs::write(&path, &bytes[..cut]).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.valid_len <= cut as u64);
        assert!(scan.records.len() <= 1);
    }
    fs::write(&path, &bytes).unwrap();
    assert_eq!(scan_wal(&path).unwrap().valid_len, full);
    fs::remove_dir_all(&dir).unwrap();
}
