//! The versioned, checksummed snapshot file format.
//!
//! A snapshot captures the complete durable state of a serving engine at
//! one instant: the mutable lake (tables, tombstones, the append-only
//! interner), the CSR bipartite graph with its component labeling, and the
//! net's cached state (id mappings, generation, per-measure score vectors
//! and memoized rankings). Scores are stored as raw IEEE-754 bit patterns,
//! so a write → read → write cycle is **bit-identical**.
//!
//! ## File layout
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ magic "DNSNAP01" (8)  │ format version u32                 │
//! ├────────────────────────────────────────────────────────────┤
//! │ section count u32                                          │
//! │ section table: { id u32, offset u64, len u64, crc32 u32 }* │
//! ├────────────────────────────────────────────────────────────┤
//! │ payloads, in section-table order:                          │
//! │   1 manifest   last_seq, epoch, served measures            │
//! │   2 lake       tables (columnar), attr slots, value sets,  │
//! │                interner                                    │
//! │   3 graph      CSR offsets + adjacency, labels, components │
//! │   4 net        config, generation, id maps, score caches   │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian; strings are length-prefixed UTF-8. Each
//! section carries its own CRC-32 so a flipped byte is attributed to the
//! section it corrupted. Decoding validates every cross-reference — within
//! the lake ([`MutableLake::from_raw_parts`]), within the graph
//! ([`BipartiteGraph::try_from_parts`], [`Components::validate_against`]),
//! within the net ([`DomainNet::from_parts`]), and **between** lake and
//! graph (value/attribute labels must agree with the interner) — before any
//! state is returned, so a torn or tampered file yields a typed
//! [`StoreError`], never a half-loaded engine.

use std::fs;
use std::io::Write;
use std::path::Path;

use dn_graph::bipartite::BipartiteGraph;
use dn_graph::components::Components;
use domainnet::{DomainNet, Measure, NetCachesState, NetState, ScoredValue};
use lake::catalog::AttrId;
use lake::delta::{LakeView, MutableLake};
use lake::value::ValueId;

use crate::codec::{
    crc32, get_measure, put_measure, put_u32_vec, put_u64_vec, ByteReader, ByteWriter,
};
use crate::error::{Result, StoreError};

/// The 8-byte magic every snapshot file starts with.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"DNSNAP01";
/// The newest snapshot format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const SECTION_MANIFEST: u32 = 1;
const SECTION_LAKE: u32 = 2;
const SECTION_GRAPH: u32 = 3;
const SECTION_NET: u32 = 4;

fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_MANIFEST => "manifest",
        SECTION_LAKE => "lake",
        SECTION_GRAPH => "graph",
        SECTION_NET => "net",
        _ => "unknown",
    }
}

/// Snapshot-level metadata: where this snapshot sits relative to the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The highest WAL batch sequence number folded into this snapshot.
    /// Recovery replays only records with larger sequence numbers.
    pub last_seq: u64,
    /// The serving epoch last published before the snapshot was taken.
    pub epoch: u64,
    /// The measures the engine was serving (recovery re-warms exactly
    /// these after each replayed batch, mirroring the live writer).
    pub measures: Vec<Measure>,
}

/// A fully validated snapshot: the lake, the net (graph + components +
/// caches), and the manifest that situates it in the WAL.
#[derive(Debug)]
pub struct PersistedState {
    /// The restored mutable lake (stable ids intact).
    pub lake: MutableLake,
    /// The restored net, caches warm exactly as persisted.
    pub net: DomainNet,
    /// Snapshot metadata.
    pub manifest: Manifest,
}

/// One entry of a snapshot's section table (exposed for corruption tooling
/// and tests that need to target a specific section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section id.
    pub id: u32,
    /// Human-readable section name.
    pub name: &'static str,
    /// Absolute byte offset of the payload within the file.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Expected CRC-32 of the payload.
    pub crc: u32,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_manifest(manifest: &Manifest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(manifest.last_seq);
    w.put_u64(manifest.epoch);
    w.put_u64(manifest.measures.len() as u64);
    for &m in &manifest.measures {
        put_measure(&mut w, m);
    }
    w.into_inner()
}

fn encode_lake(lake: &MutableLake) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let slots = lake.table_slots();
    w.put_u64(slots.len() as u64);
    for slot in slots {
        match slot {
            None => w.put_bool(false),
            Some(table) => {
                w.put_bool(true);
                w.put_str(table.name());
                w.put_u32(table.column_count() as u32);
                for column in table.columns() {
                    w.put_str(column.name());
                    // Columns are dictionary-encoded natively; persist the
                    // dictionary + row indices verbatim (small on disk, and
                    // the loader normalizes once per distinct raw cell
                    // instead of once per row).
                    let dictionary = column.dictionary();
                    w.put_u64(dictionary.len() as u64);
                    for entry in dictionary {
                        w.put_str(entry);
                    }
                    put_u32_vec(&mut w, column.cell_indices());
                }
            }
        }
    }
    let locations = lake.attr_locations();
    let live = lake.attr_live_flags();
    w.put_u64(locations.len() as u64);
    for (i, &(slot, col)) in locations.iter().enumerate() {
        w.put_u64(slot as u64);
        w.put_u32(col as u32);
        w.put_bool(live[i]);
    }
    for i in 0..locations.len() {
        let values = lake.attribute_values(AttrId(i as u32));
        w.put_u64(values.len() as u64);
        for v in values {
            w.put_u32(v.0);
        }
    }
    w.put_u64(lake.interner().len() as u64);
    for (_, value) in lake.interner().iter() {
        w.put_str(value);
    }
    w.into_inner()
}

fn encode_graph(graph: &BipartiteGraph, components: &Components) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(graph.value_count() as u64);
    w.put_u64(graph.attribute_count() as u64);
    put_u64_vec(&mut w, graph.csr_offsets());
    put_u32_vec(&mut w, graph.csr_adjacency());
    for label in graph.value_labels() {
        w.put_str(label);
    }
    for label in graph.attribute_labels() {
        w.put_str(label);
    }
    put_u32_vec(&mut w, &components.labels);
    w.put_u64(components.sizes.len() as u64);
    for &size in &components.sizes {
        w.put_u64(size as u64);
    }
    w.into_inner()
}

fn encode_net(state: &NetState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bool(state.config.prune_single_attribute_values);
    w.put_bool(state.config.drop_empty_attributes);
    w.put_u64(state.generation);
    put_u32_vec(&mut w, &state.node_of_value);
    put_u32_vec(&mut w, &state.attr_index_of);
    w.put_u64(state.attr_id_of_index.len() as u64);
    for attr in &state.attr_id_of_index {
        w.put_u32(attr.0);
    }
    w.put_u64(state.caches.raw.len() as u64);
    for (measure, scores) in &state.caches.raw {
        put_measure(&mut w, *measure);
        w.put_u64(scores.len() as u64);
        for &score in scores {
            w.put_f64(score);
        }
    }
    w.put_u64(state.caches.ranked.len() as u64);
    for (measure, ranking) in &state.caches.ranked {
        put_measure(&mut w, *measure);
        w.put_u64(ranking.len() as u64);
        for scored in ranking {
            w.put_str(&scored.value);
            w.put_f64(scored.score);
            w.put_u64(scored.attribute_count as u64);
            w.put_u64(scored.cardinality as u64);
        }
    }
    match &state.caches.meta {
        None => w.put_bool(false),
        Some(meta) => {
            w.put_bool(true);
            w.put_u64(meta.len() as u64);
            for &(attrs, card) in meta {
                w.put_u64(attrs as u64);
                w.put_u64(card as u64);
            }
        }
    }
    w.into_inner()
}

/// Encode a complete snapshot into bytes. Deterministic: the same state
/// always produces the same bytes. Equivalent to
/// [`encode_snapshot_threaded`] with one thread.
pub fn encode_snapshot(lake: &MutableLake, net: &DomainNet, manifest: &Manifest) -> Vec<u8> {
    encode_snapshot_threaded(lake, net, manifest, 1)
}

/// [`encode_snapshot`] with the four section encodes (and their CRCs)
/// spread over up to `threads` workers. The section table and payload
/// assembly stay in fixed section order, so the output bytes are identical
/// for every thread count — the `snapshot_round_trips_bit_exactly` test
/// pins this.
pub fn encode_snapshot_threaded(
    lake: &MutableLake,
    net: &DomainNet,
    manifest: &Manifest,
    threads: usize,
) -> Vec<u8> {
    let net_state = net.export_state();
    let ctx = dn_trace::current();
    let encoded: Vec<(u32, Vec<u8>, u32)> = dn_pool::Pool::new(threads).run(4, |i| {
        let _encode = if ctx.is_active() {
            // The fan-out index maps onto section ids 1..=4.
            ctx.enter(
                dn_trace::Phase::PoolSnapshotEncode,
                section_name(i as u32 + 1),
            )
        } else {
            dn_trace::SpanGuard::noop()
        };
        let (id, payload) = match i {
            0 => (SECTION_MANIFEST, encode_manifest(manifest)),
            1 => (SECTION_LAKE, encode_lake(lake)),
            2 => (SECTION_GRAPH, encode_graph(net.graph(), net.components())),
            _ => (SECTION_NET, encode_net(&net_state)),
        };
        let crc = crc32(&payload);
        (id, payload, crc)
    });

    let header_len = SNAPSHOT_MAGIC.len() + 4 + 4 + encoded.len() * (4 + 8 + 8 + 4);
    let mut w = ByteWriter::new();
    w.put_bytes(SNAPSHOT_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(encoded.len() as u32);
    let mut offset = header_len as u64;
    for (id, payload, crc) in &encoded {
        w.put_u32(*id);
        w.put_u64(offset);
        w.put_u64(payload.len() as u64);
        w.put_u32(*crc);
        offset += payload.len() as u64;
    }
    for (_, payload, _) in &encoded {
        w.put_bytes(payload);
    }
    w.into_inner()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Parse and bounds-check a snapshot's section table without touching the
/// payloads. Exposed so tests and tooling can locate sections precisely.
pub fn section_table(bytes: &[u8]) -> Result<Vec<SectionInfo>> {
    let mut r = ByteReader::new(bytes, "snapshot header");
    let magic = r.take(SNAPSHOT_MAGIC.len())?;
    if magic != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic {
            found: magic.to_vec(),
            expected: SNAPSHOT_MAGIC,
        });
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = r.get_u32()? as usize;
    if count.saturating_mul(4 + 8 + 8 + 4) > r.remaining() {
        return Err(StoreError::Truncated {
            context: "snapshot header: section table".into(),
        });
    }
    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.get_u32()?;
        let offset = r.get_u64()?;
        let len = r.get_u64()?;
        let crc = r.get_u32()?;
        let offset =
            usize::try_from(offset).map_err(|_| StoreError::corrupt("section offset overflows"))?;
        let len =
            usize::try_from(len).map_err(|_| StoreError::corrupt("section length overflows"))?;
        let end = offset.checked_add(len).filter(|&end| end <= bytes.len());
        if end.is_none() {
            return Err(StoreError::Truncated {
                context: format!("section '{}' payload", section_name(id)),
            });
        }
        sections.push(SectionInfo {
            id,
            name: section_name(id),
            offset,
            len,
            crc,
        });
    }
    Ok(sections)
}

fn section_payload<'a>(bytes: &'a [u8], sections: &[SectionInfo], id: u32) -> Result<&'a [u8]> {
    let info = sections
        .iter()
        .find(|s| s.id == id)
        .ok_or_else(|| StoreError::corrupt(format!("missing section '{}'", section_name(id))))?;
    let payload = &bytes[info.offset..info.offset + info.len];
    if crc32(payload) != info.crc {
        return Err(StoreError::SectionCrc {
            section: section_name(id),
        });
    }
    Ok(payload)
}

fn decode_manifest(payload: &[u8]) -> Result<Manifest> {
    let mut r = ByteReader::new(payload, "manifest");
    let last_seq = r.get_u64()?;
    let epoch = r.get_u64()?;
    let count = r.get_count(1)?;
    let measures = (0..count)
        .map(|_| get_measure(&mut r))
        .collect::<Result<Vec<Measure>>>()?;
    r.expect_exhausted()?;
    Ok(Manifest {
        last_seq,
        epoch,
        measures,
    })
}

fn decode_lake(payload: &[u8]) -> Result<MutableLake> {
    let mut r = ByteReader::new(payload, "lake");
    let slot_count = r.get_count(1)?;
    let mut tables = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        if !r.get_bool()? {
            tables.push(None);
            continue;
        }
        let name = r.get_str()?;
        let col_count = r.get_u32()? as usize;
        let mut columns = Vec::with_capacity(col_count.min(r.remaining()));
        for _ in 0..col_count {
            let col_name = r.get_str()?;
            let dict_count = r.get_count(8)?;
            let dictionary = (0..dict_count)
                .map(|_| r.get_str())
                .collect::<Result<Vec<String>>>()?;
            let indices = r.get_u32_vec()?;
            let column = lake::Column::from_dictionary(col_name, dictionary, indices)
                .map_err(|e| StoreError::corrupt(format!("lake: {e}")))?;
            columns.push(column);
        }
        tables.push(Some(lake::Table::from_columns(name, columns)));
    }
    let attr_count = r.get_count(8 + 4 + 1)?;
    let mut locations = Vec::with_capacity(attr_count);
    let mut live = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let slot = r.get_u64()? as usize;
        let col = r.get_u32()? as usize;
        locations.push((slot, col));
        live.push(r.get_bool()?);
    }
    let mut attr_values = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let values = r.get_u32_vec()?.into_iter().map(ValueId).collect();
        attr_values.push(values);
    }
    let value_count = r.get_count(8)?;
    let interner_values = (0..value_count)
        .map(|_| r.get_str())
        .collect::<Result<Vec<String>>>()?;
    r.expect_exhausted()?;

    MutableLake::from_raw_parts(tables, locations, live, attr_values, interner_values)
        .map_err(|e| StoreError::corrupt(format!("lake: {e}")))
}

fn decode_graph(payload: &[u8]) -> Result<(BipartiteGraph, Components)> {
    let mut r = ByteReader::new(payload, "graph");
    let n_values = r.get_u64()? as usize;
    let n_attrs = r.get_u64()? as usize;
    let offsets = r.get_u64_vec()?;
    let adjacency = r.get_u32_vec()?;
    if n_values
        .checked_add(n_attrs)
        .filter(|&n| n <= r.remaining())
        .is_none()
    {
        return Err(StoreError::Truncated {
            context: "graph: label tables".into(),
        });
    }
    let value_labels = (0..n_values)
        .map(|_| r.get_str())
        .collect::<Result<Vec<String>>>()?;
    let attr_labels = (0..n_attrs)
        .map(|_| r.get_str())
        .collect::<Result<Vec<String>>>()?;
    let labels = r.get_u32_vec()?;
    let size_count = r.get_count(8)?;
    let sizes = (0..size_count)
        .map(|_| r.get_u64().map(|s| s as usize))
        .collect::<Result<Vec<usize>>>()?;
    r.expect_exhausted()?;

    let graph = BipartiteGraph::try_from_parts(
        n_values,
        n_attrs,
        offsets,
        adjacency,
        value_labels,
        attr_labels,
    )
    .map_err(|e| StoreError::corrupt(format!("graph: {e}")))?;
    let components = Components { labels, sizes };
    components
        .validate_against(&graph)
        .map_err(|e| StoreError::corrupt(format!("components: {e}")))?;
    Ok((graph, components))
}

fn decode_net_state(payload: &[u8]) -> Result<NetState> {
    let mut r = ByteReader::new(payload, "net");
    let prune_single_attribute_values = r.get_bool()?;
    let drop_empty_attributes = r.get_bool()?;
    let generation = r.get_u64()?;
    let node_of_value = r.get_u32_vec()?;
    let attr_index_of = r.get_u32_vec()?;
    let attr_id_of_index = r.get_u32_vec()?.into_iter().map(AttrId).collect();
    let raw_count = r.get_count(1)?;
    let mut raw = Vec::with_capacity(raw_count);
    for _ in 0..raw_count {
        let measure = get_measure(&mut r)?;
        let len = r.get_count(8)?;
        let scores = (0..len)
            .map(|_| r.get_f64())
            .collect::<Result<Vec<f64>>>()?;
        raw.push((measure, scores));
    }
    let ranked_count = r.get_count(1)?;
    let mut ranked = Vec::with_capacity(ranked_count);
    for _ in 0..ranked_count {
        let measure = get_measure(&mut r)?;
        let len = r.get_count(8 + 8 + 8 + 8)?;
        let mut ranking = Vec::with_capacity(len);
        for _ in 0..len {
            let value = r.get_str()?;
            let score = r.get_f64()?;
            let attribute_count = r.get_u64()? as usize;
            let cardinality = r.get_u64()? as usize;
            ranking.push(ScoredValue {
                value,
                score,
                attribute_count,
                cardinality,
            });
        }
        ranked.push((measure, ranking));
    }
    let meta = if r.get_bool()? {
        let len = r.get_count(16)?;
        let pairs = (0..len)
            .map(|_| {
                let attrs = r.get_u64()? as usize;
                let card = r.get_u64()? as usize;
                Ok((attrs, card))
            })
            .collect::<Result<Vec<(usize, usize)>>>()?;
        Some(pairs)
    } else {
        None
    };
    r.expect_exhausted()?;

    let config = domainnet::pipeline::DomainNetConfig {
        prune_single_attribute_values,
        drop_empty_attributes,
    };
    Ok(NetState {
        config,
        generation,
        node_of_value,
        attr_index_of,
        attr_id_of_index,
        caches: NetCachesState { raw, ranked, meta },
    })
}

/// Cross-check the restored lake against the restored graph + net state:
/// every mapped value id must carry the same label on both sides, ditto
/// for live attributes, and the id spaces must line up. Runs against the
/// decoded [`NetState`] *before* it is consumed by
/// [`DomainNet::from_parts`], so the check reads the id maps in place
/// instead of cloning the score caches back out.
fn validate_lake_net_agreement(
    lake: &MutableLake,
    graph: &BipartiteGraph,
    state: &NetState,
) -> Result<()> {
    let state_len = |what: &str, got: usize, want: usize| -> Result<()> {
        if got != want {
            return Err(StoreError::corrupt(format!(
                "net {what} covers {got} ids but the lake has {want}"
            )));
        }
        Ok(())
    };
    // The net's id maps must span exactly the lake's id spaces.
    state_len("value map", state.node_of_value.len(), lake.value_count())?;
    state_len(
        "attribute map",
        state.attr_index_of.len(),
        LakeView::attribute_count(lake),
    )?;
    for (vid, &node) in state.node_of_value.iter().enumerate() {
        if node == u32::MAX {
            continue;
        }
        let lake_label = LakeView::value(lake, ValueId(vid as u32));
        let graph_label = graph
            .value_labels()
            .get(node as usize)
            .map(String::as_str)
            .ok_or_else(|| {
                StoreError::corrupt(format!("value {vid} maps to node {node} out of range"))
            })?;
        if lake_label != Some(graph_label) {
            return Err(StoreError::corrupt(format!(
                "value {vid}: lake says {lake_label:?}, graph node {node} says {graph_label:?}"
            )));
        }
    }
    for (attr_idx, &index) in state.attr_index_of.iter().enumerate() {
        if index == u32::MAX {
            continue;
        }
        let attr = AttrId(attr_idx as u32);
        // Tombstoned lake attributes legitimately keep a (stale-labeled)
        // graph node; only live ones must agree on the label.
        if let Some(aref) = lake.attribute_ref(attr) {
            let graph_label = graph
                .attribute_labels()
                .get(index as usize)
                .map(String::as_str)
                .ok_or_else(|| {
                    StoreError::corrupt(format!(
                        "attribute {attr_idx} maps to index {index} out of range"
                    ))
                })?;
            if aref.qualified() != graph_label {
                return Err(StoreError::corrupt(format!(
                    "attribute {attr_idx}: lake says '{}', graph says '{graph_label}'",
                    aref.qualified()
                )));
            }
        }
    }
    Ok(())
}

/// One snapshot section, CRC-verified and decoded — the unit of work
/// [`decode_snapshot_threaded`] fans out.
enum DecodedSection {
    Manifest(Manifest),
    Lake(Box<MutableLake>),
    Graph(Box<(BipartiteGraph, Components)>),
    Net(Box<NetState>),
}

/// Decode and fully validate a snapshot from bytes. Equivalent to
/// [`decode_snapshot_threaded`] with one thread.
pub fn decode_snapshot(bytes: &[u8]) -> Result<PersistedState> {
    decode_snapshot_threaded(bytes, 1)
}

/// [`decode_snapshot`] with the per-section CRC checks and decodes spread
/// over up to `threads` workers. Validation coverage is identical to the
/// sequential path — every section is checked, and the cross-section
/// validations run after the fan-in. Only the error *choice* can differ
/// when several sections are corrupt at once (the sequential path reports
/// the first in section order; this reports the first in fan-in order,
/// which is the same order).
pub fn decode_snapshot_threaded(bytes: &[u8], threads: usize) -> Result<PersistedState> {
    let sections = section_table(bytes)?;
    let ctx = dn_trace::current();
    let decoded = dn_pool::Pool::new(threads).run(4, |i| -> Result<DecodedSection> {
        let _decode = if ctx.is_active() {
            // The fan-out index maps onto section ids 1..=4.
            ctx.enter(
                dn_trace::Phase::PoolSnapshotDecode,
                section_name(i as u32 + 1),
            )
        } else {
            dn_trace::SpanGuard::noop()
        };
        match i {
            0 => Ok(DecodedSection::Manifest(decode_manifest(section_payload(
                bytes,
                &sections,
                SECTION_MANIFEST,
            )?)?)),
            1 => Ok(DecodedSection::Lake(Box::new(decode_lake(
                section_payload(bytes, &sections, SECTION_LAKE)?,
            )?))),
            2 => Ok(DecodedSection::Graph(Box::new(decode_graph(
                section_payload(bytes, &sections, SECTION_GRAPH)?,
            )?))),
            _ => Ok(DecodedSection::Net(Box::new(decode_net_state(
                section_payload(bytes, &sections, SECTION_NET)?,
            )?))),
        }
    });
    let mut manifest = None;
    let mut lake = None;
    let mut graph_parts = None;
    let mut state = None;
    for section in decoded {
        match section? {
            DecodedSection::Manifest(m) => manifest = Some(m),
            DecodedSection::Lake(l) => lake = Some(*l),
            DecodedSection::Graph(g) => graph_parts = Some(*g),
            DecodedSection::Net(s) => state = Some(*s),
        }
    }
    let (manifest, lake) = (manifest.expect("task 0 ran"), lake.expect("task 1 ran"));
    let (graph, components) = graph_parts.expect("task 2 ran");
    let state = state.expect("task 3 ran");
    validate_lake_net_agreement(&lake, &graph, &state)?;
    let net = DomainNet::from_parts(graph, components, state)
        .map_err(|e| StoreError::corrupt(format!("net: {e}")))?;
    Ok(PersistedState {
        lake,
        net,
        manifest,
    })
}

/// Write a snapshot atomically: encode, write to a sibling temp file,
/// fsync, then rename into place. Returns the snapshot size in bytes.
pub fn write_snapshot(
    path: &Path,
    lake: &MutableLake,
    net: &DomainNet,
    manifest: &Manifest,
) -> Result<u64> {
    write_snapshot_threaded(path, lake, net, manifest, 1)
}

/// [`write_snapshot`] with the section encodes spread over up to `threads`
/// workers (the file bytes are identical for every thread count).
pub fn write_snapshot_threaded(
    path: &Path,
    lake: &MutableLake,
    net: &DomainNet,
    manifest: &Manifest,
    threads: usize,
) -> Result<u64> {
    let bytes = encode_snapshot_threaded(lake, net, manifest, threads);
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp).map_err(|e| StoreError::io_with_path(e, &tmp))?;
        file.write_all(&bytes)
            .map_err(|e| StoreError::io_with_path(e, &tmp))?;
        file.sync_all()
            .map_err(|e| StoreError::io_with_path(e, &tmp))?;
    }
    fs::rename(&tmp, path).map_err(|e| StoreError::io_with_path(e, path))?;
    Ok(bytes.len() as u64)
}

/// Read and fully validate a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<PersistedState> {
    read_snapshot_threaded(path, 1)
}

/// [`read_snapshot`] with section decoding spread over up to `threads`
/// workers.
pub fn read_snapshot_threaded(path: &Path, threads: usize) -> Result<PersistedState> {
    let bytes = fs::read(path).map_err(|e| StoreError::io_with_path(e, path))?;
    decode_snapshot_threaded(&bytes, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domainnet::DomainNetBuilder;
    use lake::delta::LakeDelta;
    use lake::table::TableBuilder;

    fn sample_state() -> (MutableLake, DomainNet, Manifest) {
        let mut lake = MutableLake::from_catalog(&lake::fixtures::running_example());
        let mut net = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(&lake);
        let measures = vec![Measure::lcc(), Measure::exact_bc()];
        net.warm_rankings(&measures);
        // Fold in a mutation so tombstones and generation > 0 are exercised.
        let effects = lake
            .apply(
                &LakeDelta::new().remove_table("T3").add_table(
                    TableBuilder::new("T9")
                        .column("animal", ["Jaguar", "Okapi"])
                        .build()
                        .unwrap(),
                ),
            )
            .unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        net.warm_rankings(&measures);
        let manifest = Manifest {
            last_seq: 17,
            epoch: 3,
            measures,
        };
        (lake, net, manifest)
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let (lake, net, manifest) = sample_state();
        let bytes = encode_snapshot(&lake, &net, &manifest);
        let restored = decode_snapshot(&bytes).unwrap();

        assert_eq!(restored.manifest, manifest);
        // Lake: identical id spaces and live structure.
        assert_eq!(restored.lake.live_table_names(), lake.live_table_names());
        assert_eq!(
            LakeView::incidence_count(&restored.lake),
            LakeView::incidence_count(&lake)
        );
        for vid in (0..lake.value_count() as u32).map(ValueId) {
            assert_eq!(
                LakeView::value(&restored.lake, vid),
                LakeView::value(&lake, vid)
            );
        }
        // Graph: identical CSR arrays.
        assert_eq!(
            restored.net.graph().csr_offsets(),
            net.graph().csr_offsets()
        );
        assert_eq!(
            restored.net.graph().csr_adjacency(),
            net.graph().csr_adjacency()
        );
        // Net state (scores compared via PartialEq on the export).
        assert_eq!(restored.net.export_state(), net.export_state());
        // Re-encoding the restored state is byte-identical: the format is
        // deterministic and nothing was lost.
        assert_eq!(
            encode_snapshot(&restored.lake, &restored.net, &restored.manifest),
            bytes
        );
    }

    #[test]
    fn threaded_codec_is_byte_identical_to_sequential() {
        let (lake, net, manifest) = sample_state();
        let sequential = encode_snapshot(&lake, &net, &manifest);
        for threads in [2, 4, 8] {
            let threaded = encode_snapshot_threaded(&lake, &net, &manifest, threads);
            assert_eq!(threaded, sequential, "threads={threads}");
            let restored = decode_snapshot_threaded(&sequential, threads).unwrap();
            assert_eq!(restored.manifest, manifest, "threads={threads}");
            assert_eq!(
                restored.net.export_state(),
                net.export_state(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn threaded_decode_still_attributes_corruption_to_its_section() {
        let (lake, net, manifest) = sample_state();
        let bytes = encode_snapshot(&lake, &net, &manifest);
        let sections = section_table(&bytes).unwrap();
        let graph = sections.iter().find(|s| s.id == SECTION_GRAPH).unwrap();
        let mut bad = bytes.clone();
        bad[graph.offset + graph.len / 2] ^= 0xFF;
        match decode_snapshot_threaded(&bad, 4).unwrap_err() {
            StoreError::SectionCrc { section } => assert_eq!(section, "graph"),
            other => panic!("expected a section CRC error, got {other:?}"),
        }
    }

    #[test]
    fn restored_rankings_are_served_from_the_memo() {
        let (lake, net, manifest) = sample_state();
        let bytes = encode_snapshot(&lake, &net, &manifest);
        let restored = decode_snapshot(&bytes).unwrap();
        for &measure in &manifest.measures {
            let a = net.rank_shared(measure);
            let b = restored.net.rank_shared(measure);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.value, y.value);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{}", x.value);
            }
        }
    }

    #[test]
    fn section_table_locates_all_four_sections() {
        let (lake, net, manifest) = sample_state();
        let bytes = encode_snapshot(&lake, &net, &manifest);
        let sections = section_table(&bytes).unwrap();
        let ids: Vec<u32> = sections.iter().map(|s| s.id).collect();
        assert_eq!(
            ids,
            vec![SECTION_MANIFEST, SECTION_LAKE, SECTION_GRAPH, SECTION_NET]
        );
        let total: usize = sections.iter().map(|s| s.len).sum();
        let last = sections.last().unwrap();
        assert_eq!(last.offset + last.len, bytes.len());
        assert!(total < bytes.len());
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let dir = crate::testutil::scratch_dir("snapfile");
        let (lake, net, manifest) = sample_state();
        let path = dir.join("snap.dnsnap");
        let bytes_written = write_snapshot(&path, &lake, &net, &manifest).unwrap();
        assert_eq!(bytes_written, fs::metadata(&path).unwrap().len());
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        let restored = read_snapshot(&path).unwrap();
        assert_eq!(restored.net.export_state(), net.export_state());
        fs::remove_dir_all(&dir).unwrap();
    }
}
