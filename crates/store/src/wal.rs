//! The append-only write-ahead delta log.
//!
//! Every committed batch of [`LakeDelta`]s is appended here **before** it
//! is applied to the in-memory engine, so a crash at any instant loses at
//! most work that was never acknowledged. Records carry a monotonically
//! increasing batch sequence number and a CRC-32 over `seq + payload`:
//!
//! ```text
//! magic "DNWAL001" (8) │ format version u32
//! record*:
//!   seq u64 │ epoch u64 │ payload_len u32 │ crc32(seq ‖ epoch ‖ payload) u32 │ payload
//! ```
//!
//! The payload is the JSON encoding of the `Vec<LakeDelta>` batch (deltas
//! are table-level operations — strings all the way down — so JSON
//! round-trips them exactly; scores never pass through the WAL).
//!
//! ## Torn-tail semantics
//!
//! A crash mid-append leaves a partial record at the end of the file.
//! [`scan_wal`] reads records until the first incomplete or CRC-failing
//! one, reports everything before it as the valid prefix, and recovery
//! truncates the file there. A flipped byte mid-log is indistinguishable
//! from a torn tail and is handled the same way: replay stops at the last
//! verifiable record. Structural impossibilities with *valid* CRCs — a
//! non-increasing sequence number, an undecodable batch — are not torn
//! tails and surface as typed [`StoreError::Corrupt`] values instead.
//!
//! ## Durability ordering
//!
//! WAL shipping (read replicas tail this log over HTTP) leans on two
//! invariants, pinned by `durability_ordering_is_pinned` below:
//!
//! 1. **Every `Ok` from [`Wal::append`] is durable and externally
//!    visible.** `append` issues `write_all` + `sync_data` for each
//!    record before returning, so the instant a batch is acknowledged an
//!    independent reader of the file (a scanner, a replica fetch) sees
//!    it, and a crash at any later point keeps it. There is no buffering
//!    layer that could reorder acknowledgement and visibility.
//! 2. **A clean reopen never rewrites history.** [`Wal::open_truncated`]
//!    only pays a truncate + `sync_all` when the on-disk length differs
//!    from the verified prefix — a reopen of an untorn log leaves every
//!    byte untouched, so record offsets and contents a replica already
//!    fetched stay valid across primary restarts. Only an actual torn
//!    tail (which, by invariant 1, can only ever contain *unacknowledged*
//!    bytes) is cut back, exactly to the verified prefix.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use lake::delta::{LakeDelta, LakeOp};

use crate::codec::crc32;
use crate::error::{Result, StoreError};

/// The 8-byte magic every WAL file starts with.
pub const WAL_MAGIC: &[u8; 8] = b"DNWAL001";
/// The newest WAL format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;

const HEADER_LEN: u64 = 8 + 4;
const RECORD_HEADER_LEN: u64 = 8 + 8 + 4 + 4;

/// One decoded WAL record: a batch of deltas committed under one sequence
/// number.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The batch sequence number.
    pub seq: u64,
    /// The serving epoch the writer had published when it committed this
    /// batch (recovery resumes epoch numbering after the last one).
    pub epoch: u64,
    /// The staged deltas of the batch, in commit order.
    pub batch: Vec<LakeDelta>,
    /// Byte offset of the record's header within the file (recovery
    /// truncates here when a fallback makes the suffix unreplayable).
    pub offset: u64,
}

/// The result of scanning a WAL file front to back.
#[derive(Debug)]
pub struct WalScan {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (where recovery truncates to).
    pub valid_len: u64,
    /// Total file length found on disk.
    pub file_len: u64,
    /// Why scanning stopped early, if it did (torn tail description).
    pub torn: Option<String>,
}

/// Scan a WAL file, verifying every record CRC. Stops at the first
/// incomplete or checksum-failing record (the torn tail) — see the
/// [module docs](self) for which malformations are torn tails and which
/// are typed errors.
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let mut file = File::open(path).map_err(|e| StoreError::io_with_path(e, path))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| StoreError::io_with_path(e, path))?;
    let file_len = bytes.len() as u64;

    if file_len < HEADER_LEN {
        // A crash during creation can leave a short or empty file; that is
        // a torn header, not a foreign file.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            file_len,
            torn: Some(format!("header incomplete ({file_len} bytes)")),
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(StoreError::BadMagic {
            found: bytes[..8].to_vec(),
            expected: WAL_MAGIC,
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if (remaining as u64) < RECORD_HEADER_LEN {
            torn = Some(format!("record header incomplete at offset {pos}"));
            break;
        }
        let seq = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        let epoch = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8 bytes"));
        let len =
            u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 20..pos + 24].try_into().expect("4 bytes"));
        let payload_start = pos + RECORD_HEADER_LEN as usize;
        if bytes.len() - payload_start < len {
            torn = Some(format!("record payload incomplete at offset {pos}"));
            break;
        }
        let payload = &bytes[payload_start..payload_start + len];
        let mut checked = Vec::with_capacity(16 + len);
        checked.extend_from_slice(&seq.to_le_bytes());
        checked.extend_from_slice(&epoch.to_le_bytes());
        checked.extend_from_slice(payload);
        if crc32(&checked) != crc {
            torn = Some(format!("record checksum mismatch at offset {pos}"));
            break;
        }
        // From here on the record is bit-intact; failures are corruption,
        // not torn tails.
        if let Some(prev) = records.last().map(|r: &WalRecord| r.seq) {
            if seq <= prev {
                return Err(StoreError::corrupt(format!(
                    "WAL sequence went backwards: {seq} after {prev}"
                )));
            }
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| StoreError::corrupt(format!("WAL record {seq} is not UTF-8")))?;
        let batch: Vec<LakeDelta> = serde_json::from_str(text)
            .map_err(|e| StoreError::corrupt(format!("WAL record {seq} does not decode: {e}")))?;
        // Serde's derived decode trusts whatever the JSON said; tables ride
        // inside AddTable ops, so re-check their construction invariants
        // (dictionary encoding, rectangularity, unique column names) here
        // — a checksum-valid but structurally impossible record must be a
        // typed error, never a panic during replay.
        for delta in &batch {
            for op in delta.ops() {
                if let LakeOp::AddTable(table) = op {
                    table
                        .validate_encoding()
                        .map_err(|e| StoreError::corrupt(format!("WAL record {seq}: {e}")))?;
                }
            }
        }
        records.push(WalRecord {
            seq,
            epoch,
            batch,
            offset: pos as u64,
        });
        pos = payload_start + len;
    }

    Ok(WalScan {
        records,
        valid_len: pos as u64,
        file_len,
        torn,
    })
}

/// An open WAL with an append cursor.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    len: u64,
}

impl Wal {
    /// Create a fresh WAL (truncating any existing file) with just the
    /// header, synced to disk.
    pub fn create(path: &Path) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io_with_path(e, path))?;
        file.write_all(WAL_MAGIC)
            .map_err(|e| StoreError::io_with_path(e, path))?;
        file.write_all(&WAL_VERSION.to_le_bytes())
            .map_err(|e| StoreError::io_with_path(e, path))?;
        file.sync_all()
            .map_err(|e| StoreError::io_with_path(e, path))?;
        Ok(Wal {
            path: path.to_owned(),
            file,
            len: HEADER_LEN,
        })
    }

    /// Open an existing WAL for appending, truncating it to `valid_len`
    /// (the prefix a [`scan_wal`] verified). A `valid_len` below the header
    /// length rewrites the header — the file was torn during creation.
    pub fn open_truncated(path: &Path, valid_len: u64) -> Result<Wal> {
        if valid_len < HEADER_LEN {
            return Wal::create(path);
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io_with_path(e, path))?;
        let on_disk = file
            .metadata()
            .map_err(|e| StoreError::io_with_path(e, path))?
            .len();
        if on_disk != valid_len {
            // Only an actual tear pays a truncate + fsync; the common case
            // (clean log) opens without touching the disk.
            file.set_len(valid_len)
                .map_err(|e| StoreError::io_with_path(e, path))?;
            file.sync_all()
                .map_err(|e| StoreError::io_with_path(e, path))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io_with_path(e, path))?;
        Ok(Wal {
            path: path.to_owned(),
            file,
            len: valid_len,
        })
    }

    /// Append one committed batch under `seq`, tagged with the writer's
    /// current serving `epoch`, flushing and syncing before returning —
    /// when this returns `Ok`, the batch survives a crash. Returns the
    /// bytes appended.
    pub fn append(&mut self, seq: u64, epoch: u64, batch: &[LakeDelta]) -> Result<u64> {
        let payload = serde_json::to_string(batch)
            .map_err(|e| StoreError::corrupt(format!("batch {seq} does not encode: {e}")))?;
        let payload = payload.as_bytes();
        if payload.len() > u32::MAX as usize {
            return Err(StoreError::corrupt(format!(
                "batch {seq} encodes to {} bytes, above the record limit",
                payload.len()
            )));
        }
        let mut checked = Vec::with_capacity(16 + payload.len());
        checked.extend_from_slice(&seq.to_le_bytes());
        checked.extend_from_slice(&epoch.to_le_bytes());
        checked.extend_from_slice(payload);
        let crc = crc32(&checked);

        let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        record.extend_from_slice(&seq.to_le_bytes());
        record.extend_from_slice(&epoch.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc.to_le_bytes());
        record.extend_from_slice(payload);
        self.file
            .write_all(&record)
            .map_err(|e| StoreError::io_with_path(e, &self.path))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io_with_path(e, &self.path))?;
        self.len += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Trim the log back to just its header (after a checkpoint has made
    /// every record redundant).
    pub fn reset(&mut self) -> Result<()> {
        self.file
            .set_len(HEADER_LEN)
            .map_err(|e| StoreError::io_with_path(e, &self.path))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io_with_path(e, &self.path))?;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io_with_path(e, &self.path))?;
        self.len = HEADER_LEN;
        Ok(())
    }

    /// Current file length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Bytes of record data (header excluded) — the quantity checkpoint
    /// policies meter.
    pub fn record_bytes(&self) -> u64 {
        self.len - HEADER_LEN
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake::table::TableBuilder;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        // One scratch dir per test file name — tests run in parallel and
        // must not clobber each other's directories.
        let stem = name.replace('.', "_");
        crate::testutil::scratch_dir(&format!("wal_{stem}")).join(name)
    }

    fn batch(i: u32) -> Vec<LakeDelta> {
        vec![LakeDelta::new().add_table(
            TableBuilder::new(format!("t{i}"))
                .column("c", ["Jaguar", "Puma"])
                .build()
                .unwrap(),
        )]
    }

    #[test]
    fn append_scan_round_trip() {
        let path = tmp("roundtrip.wal");
        let mut wal = Wal::create(&path).unwrap();
        for seq in 1..=3u64 {
            wal.append(seq, 0, &batch(seq as u32)).unwrap();
        }
        let scan = scan_wal(&path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_len, scan.file_len);
        assert_eq!(scan.records.len(), 3);
        for (i, record) in scan.records.iter().enumerate() {
            assert_eq!(record.seq, i as u64 + 1);
            assert_eq!(record.batch.len(), 1);
            assert_eq!(record.batch[0].len(), 1);
        }
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_and_prefix_survives() {
        let path = tmp("torn.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, 0, &batch(1)).unwrap();
        let good_len = wal.len_bytes();
        wal.append(2, 0, &batch(2)).unwrap();
        drop(wal);
        // Tear the second record in half.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..good_len as usize + 9]).unwrap();

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, good_len);
        assert!(scan.torn.is_some());

        // Re-opening truncates the tear and appending continues cleanly.
        let mut wal = Wal::open_truncated(&path, scan.valid_len).unwrap();
        wal.append(2, 0, &batch(2)).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.len(), 2);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn flipped_byte_truncates_from_the_flip() {
        let path = tmp("flip.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, 0, &batch(1)).unwrap();
        let good_len = wal.len_bytes() as usize;
        wal.append(2, 0, &batch(2)).unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        bytes[good_len + 20] ^= 0xFF; // inside record 2
        fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1, "replay stops at the flip");
        assert!(scan.torn.unwrap().contains("checksum"));
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn bad_magic_and_future_version_are_typed_errors() {
        let path = tmp("magic.wal");
        fs::write(&path, b"NOTAWAL!!!!!").unwrap();
        assert!(matches!(
            scan_wal(&path).unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        let mut header = WAL_MAGIC.to_vec();
        header.extend_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &header).unwrap();
        assert!(matches!(
            scan_wal(&path).unwrap_err(),
            StoreError::UnsupportedVersion { found: 99, .. }
        ));
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn empty_or_headerless_file_is_a_torn_header() {
        let path = tmp("empty.wal");
        fs::write(&path, b"").unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.valid_len, 0);
        assert!(scan.torn.is_some());
        // open_truncated rewrites the header and the WAL is usable again.
        let mut wal = Wal::open_truncated(&path, scan.valid_len).unwrap();
        wal.append(1, 0, &batch(1)).unwrap();
        assert_eq!(scan_wal(&path).unwrap().records.len(), 1);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn non_monotone_sequence_is_corrupt_not_torn() {
        let path = tmp("seq.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(5, 0, &batch(1)).unwrap();
        wal.append(5, 0, &batch(2)).unwrap(); // duplicate seq, valid CRC
        drop(wal);
        assert!(matches!(
            scan_wal(&path).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn durability_ordering_is_pinned() {
        // The two invariants WAL shipping relies on (see the module docs):
        // an acknowledged append is immediately visible to an independent
        // reader of the file, and a clean reopen does not modify a single
        // byte, while a torn reopen truncates exactly to the verified
        // prefix and nothing more.
        let path = tmp("ordering.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, 0, &batch(1)).unwrap();
        // (1) Acknowledged => visible: a fresh scan of the file (separate
        // descriptor, no shared state with the open writer) sees the
        // record the moment `append` returned Ok.
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1, "Ok append is externally visible");
        assert_eq!(scan.file_len, wal.len_bytes(), "no buffered suffix");
        wal.append(2, 0, &batch(2)).unwrap();
        drop(wal);

        // (2) Clean reopen: byte-for-byte identical before and after.
        let before = fs::read(&path).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.torn.is_none());
        let wal = Wal::open_truncated(&path, scan.valid_len).unwrap();
        assert_eq!(wal.len_bytes(), scan.valid_len);
        drop(wal);
        assert_eq!(
            fs::read(&path).unwrap(),
            before,
            "reopen of an untorn log must not rewrite history"
        );

        // (3) Torn reopen: truncates exactly to the verified prefix.
        let first_two = before.len() as u64;
        fs::write(&path, [&before[..], &[0xAB, 0xCD, 0xEF]].concat()).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.valid_len, first_two, "tear detected");
        let mut wal = Wal::open_truncated(&path, scan.valid_len).unwrap();
        assert_eq!(fs::read(&path).unwrap(), before, "cut back to the prefix");
        // Appending after the truncate continues the sequence cleanly.
        wal.append(3, 0, &batch(3)).unwrap();
        assert_eq!(scan_wal(&path).unwrap().records.len(), 3);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn reset_trims_to_header() {
        let path = tmp("reset.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, 0, &batch(1)).unwrap();
        assert!(wal.record_bytes() > 0);
        wal.reset().unwrap();
        assert_eq!(wal.record_bytes(), 0);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.torn.is_none());
        // Appending after a reset still works.
        wal.append(7, 0, &batch(7)).unwrap();
        assert_eq!(scan_wal(&path).unwrap().records[0].seq, 7);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
