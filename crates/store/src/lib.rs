//! # `dn-store` — durable snapshot + delta-WAL persistence for DomainNet
//!
//! Everything upstream of this crate lives in memory: the mutable lake
//! (PR 2), the incremental net maintenance, and the epoch-serving engine
//! (PR 3) all evaporate on process exit, and a restart pays the full
//! cold-start bill — CSV parsing plus LCC/BC scoring from scratch. This
//! crate makes the engine durable with two cooperating halves:
//!
//! * **[`snapshot`]** — a versioned, checksummed, length-prefixed binary
//!   columnar format for the complete engine state: the
//!   [`lake::MutableLake`] (tables, tombstones, the append-only interner),
//!   the CSR [`dn_graph::bipartite::BipartiteGraph`] with its component
//!   labeling, and the [`domainnet::DomainNet`] caches (id maps,
//!   generation, per-measure score vectors and memoized rankings, stored
//!   as raw IEEE-754 bits so they round-trip exactly). Every section
//!   carries a CRC-32 and every cross-reference is validated on load.
//! * **[`wal`]** — an append-only write-ahead log of committed
//!   [`lake::LakeDelta`] batches with per-record CRCs and torn-tail
//!   truncation.
//!
//! [`store::Store`] ties them together: batches are logged before they are
//! applied, checkpoints snapshot the engine and trim the log, and
//! [`store::Store::recover`] replays the WAL suffix through the *same*
//! incremental path the live writer uses — so a recovered engine is equal,
//! score-for-score, to one that never crashed. The `dn-service` crate
//! builds its `serve_durable` / `serve_from_dir` entry points on top.
//!
//! Like the rest of the workspace, the crate is fully self-contained: the
//! binary codec, CRC-32, and file formats are hand-rolled on `std`, with
//! no registry dependencies beyond the existing vendor shims.
//!
//! ## Example
//!
//! ```
//! use dn_store::{Manifest, Store};
//! use domainnet::{DomainNetBuilder, Measure};
//! use lake::delta::{LakeDelta, MutableLake};
//! use lake::table::TableBuilder;
//!
//! let dir = std::env::temp_dir().join(format!("dn_store_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // A live engine: lake + net with warm rankings.
//! let mut lake = MutableLake::from_catalog(&lake::fixtures::running_example());
//! let mut net = DomainNetBuilder::new().build(&lake);
//! let measures = [Measure::lcc()];
//! net.warm_rankings(&measures);
//!
//! // Checkpoint it, then durably log one more batch before applying it.
//! let mut store = Store::create(&dir).unwrap();
//! store.checkpoint(&lake, &net, 0, &measures).unwrap();
//! let batch = vec![LakeDelta::new().add_table(
//!     TableBuilder::new("T9").column("animal", ["Jaguar", "Okapi"]).build().unwrap(),
//! )];
//! store.append_batch(0, &batch).unwrap();
//! let effects = lake.apply_batch(batch.iter()).unwrap();
//! net.apply_delta(&lake, &effects).unwrap();
//! net.warm_rankings(&measures);
//!
//! // "Crash" and recover: the WAL suffix replays on top of the snapshot.
//! drop(store);
//! let (_store, recovered) = Store::recover(&dir).unwrap();
//! assert_eq!(recovered.replayed_batches, 1);
//! assert_eq!(recovered.net.export_state(), net.export_state());
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
pub mod digest;
pub mod error;
pub mod sharded;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{from_hex, to_hex};
pub use digest::Digest64;
pub use error::{Result, StoreError};
pub use sharded::{
    clear_rebalance_intent, read_rebalance_intent, read_shard_manifest, shard_dir,
    sharded_store_exists, write_rebalance_intent, write_shard_manifest, RebalanceIntent,
    ShardManifest, TableMove,
};
pub use snapshot::{
    read_snapshot, write_snapshot, Manifest, PersistedState, SectionInfo, FORMAT_VERSION,
    SNAPSHOT_MAGIC,
};
pub use store::{
    install_snapshot, list_snapshots, Recovered, Store, StorePresence, StoreStats, WalTail,
};
pub use wal::{scan_wal, Wal, WalRecord, WalScan};

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;

    /// Workspace-local scratch directory for this crate's unit tests —
    /// lives under `target/tmp` so the CI tempdir-hygiene gate catches any
    /// test that leaks state, and stays off the shared system temp dir.
    pub(crate) fn scratch_dir(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("dn_store_unit_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create unit-test scratch dir");
        dir
    }
}
