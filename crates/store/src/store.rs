//! The on-disk store: a directory holding snapshots and one WAL, plus the
//! crash-recovery path that reunites them.
//!
//! ## Directory layout and lifecycle
//!
//! ```text
//! <dir>/
//!   snapshot-00000000000000000000.dnsnap   initial checkpoint (batch seq 0)
//!   snapshot-00000000000000000042.dnsnap   latest checkpoint  (≤ 2 kept)
//!   wal.dnlog                              batches after the newest snapshot
//! ```
//!
//! * [`Store::create`] initializes an empty directory (fresh WAL; the
//!   caller writes the initial checkpoint).
//! * [`Store::append_batch`] durably logs one committed batch and assigns
//!   it the next sequence number.
//! * [`Store::checkpoint`] writes a new snapshot (atomic temp-file +
//!   rename), **then** trims the WAL and prunes old snapshots — the log is
//!   only shortened once the snapshot that replaces it is on disk.
//! * [`Store::recover`] loads the newest readable snapshot (falling back
//!   to older ones if the newest is corrupt), replays the WAL suffix
//!   through the same incremental path the live writer uses, truncates any
//!   torn tail, and returns a lake + net equal to a never-crashed run.

use std::fs;
use std::path::{Path, PathBuf};

use domainnet::{DomainNet, Measure};
use lake::delta::{LakeDelta, MutableLake};

use crate::error::{Result, StoreError};
use crate::snapshot::{read_snapshot_threaded, write_snapshot_threaded, Manifest};
use crate::wal::{scan_wal, Wal};

const SNAPSHOT_PREFIX: &str = "snapshot-";
const SNAPSHOT_SUFFIX: &str = ".dnsnap";
const WAL_FILE: &str = "wal.dnlog";
/// How many snapshot generations survive a checkpoint (the newest plus one
/// fallback, so a crash *during* corruption of the newest file still
/// recovers).
const SNAPSHOTS_KEPT: usize = 2;

/// A handle on one store directory with an open, append-ready WAL.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    next_seq: u64,
    /// Worker threads for snapshot section encode/decode (≥ 1). Runtime
    /// only — the file format is identical for every width.
    threads: usize,
}

/// Point-in-time size/progress counters of one store directory, exposed
/// for observability surfaces (the HTTP server's `/metrics` endpoint and
/// the `dn-serve` startup log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StoreStats {
    /// Bytes of batch records in the WAL (what the size-based checkpoint
    /// policy meters; excludes the file header).
    pub wal_record_bytes: u64,
    /// Total WAL file length in bytes, header included.
    pub wal_file_bytes: u64,
    /// Snapshot files currently on disk.
    pub snapshot_count: usize,
    /// Sequence number of the newest snapshot (`None` when the directory
    /// holds no snapshot yet).
    pub newest_snapshot_seq: Option<u64>,
    /// The highest batch sequence number handed out so far.
    pub last_seq: u64,
}

/// What [`Store::probe`] found in a directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorePresence {
    /// No store files: initialize with [`Store::create`].
    Fresh,
    /// A usable store (or one whose problems must surface as recovery
    /// errors): open with [`Store::recover`].
    Recoverable,
    /// Only a record-free WAL from an initialization that crashed before
    /// its first checkpoint; delete `wal_path` and initialize fresh.
    AbortedInit {
        /// The leftover WAL file.
        wal_path: PathBuf,
    },
}

/// The outcome of [`Store::recover`]: engine state equal (to the bit) to
/// what a never-crashed writer held after its last durable commit.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered lake, stable ids intact.
    pub lake: MutableLake,
    /// The recovered net, caches warmed for [`Recovered::measures`].
    pub net: DomainNet,
    /// The serving epoch the engine resumes publishing from (the highest
    /// of the snapshot's epoch and the replayed records' epoch tags + 1).
    pub epoch: u64,
    /// The epoch recorded in the snapshot recovery started from (i.e. the
    /// epoch of the last on-disk checkpoint; checkpoint policies measure
    /// from here).
    pub snapshot_epoch: u64,
    /// The measures the crashed engine was serving.
    pub measures: Vec<Measure>,
    /// The last batch sequence number folded into the recovered state.
    pub last_seq: u64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed_batches: usize,
    /// Replayed batches that failed mid-apply and triggered the same
    /// rebuild-from-live-state escape hatch the live writer uses.
    pub resyncs: usize,
    /// Snapshot files that were present but unreadable and skipped.
    pub snapshots_skipped: usize,
    /// WAL batches that chained onto a skipped (corrupt) newer snapshot
    /// and were truncated away during a fallback recovery.
    pub wal_batches_discarded: usize,
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{seq:020}{SNAPSHOT_SUFFIX}"))
}

/// What [`Store::wal_after`] can hand a tailing replica.
#[derive(Debug)]
pub enum WalTail {
    /// The contiguous run of verified records with sequence numbers
    /// strictly greater than the requested `from_seq` (empty when the
    /// replica is caught up).
    Records(Vec<crate::wal::WalRecord>),
    /// A checkpoint trimmed the log past `from_seq`: the records the
    /// replica needs no longer exist, and it must re-bootstrap from the
    /// newest snapshot (which folds in every batch up to `snapshot_seq`).
    SnapshotRequired {
        /// Sequence number the newest on-disk snapshot covers through.
        snapshot_seq: u64,
    },
}

/// Initialize `dir` as a store seeded from raw snapshot `bytes` fetched
/// from a primary: the bytes are fully validated (magic, version, section
/// CRCs, cross-references), written atomically under the sequence number
/// recorded in their manifest, and paired with a fresh empty WAL — after
/// which the directory is [`StorePresence::Recoverable`] and a normal
/// [`Store::recover`] reproduces the primary's checkpointed state.
/// Returns the sequence number the snapshot covers through (the replica
/// tails the primary's WAL from there).
///
/// # Errors
/// [`StoreError::Corrupt`] when the bytes fail validation or `dir`
/// already holds a store; I/O errors from writing.
pub fn install_snapshot(dir: &Path, bytes: &[u8]) -> Result<u64> {
    let state = crate::snapshot::decode_snapshot(bytes)?;
    let last_seq = state.manifest.last_seq;
    fs::create_dir_all(dir).map_err(|e| StoreError::io_with_path(e, dir))?;
    if !list_snapshots(dir)?.is_empty() || dir.join(WAL_FILE).exists() {
        return Err(StoreError::corrupt(format!(
            "{} already contains a store; refusing to install a snapshot over it",
            dir.display()
        )));
    }
    let path = snapshot_path(dir, last_seq);
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut file = fs::File::create(&tmp).map_err(|e| StoreError::io_with_path(e, &tmp))?;
        file.write_all(bytes)
            .map_err(|e| StoreError::io_with_path(e, &tmp))?;
        file.sync_all()
            .map_err(|e| StoreError::io_with_path(e, &tmp))?;
    }
    fs::rename(&tmp, &path).map_err(|e| StoreError::io_with_path(e, &path))?;
    Wal::create(&dir.join(WAL_FILE))?;
    Ok(last_seq)
}

/// List `(seq, path)` of the snapshot files in `dir`, newest first.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| StoreError::io_with_path(e, dir))? {
        let entry = entry.map_err(|e| StoreError::io_with_path(e, dir))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|s| s.strip_suffix(SNAPSHOT_SUFFIX))
        else {
            continue;
        };
        if let Ok(seq) = stem.parse::<u64>() {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(out)
}

impl Store {
    /// Initialize a store in `dir` (created if missing). Fails with a
    /// typed error if the directory already holds store files — opening an
    /// existing store goes through [`Store::recover`].
    pub fn create(dir: impl Into<PathBuf>) -> Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io_with_path(e, &dir))?;
        if !list_snapshots(&dir)?.is_empty() || dir.join(WAL_FILE).exists() {
            return Err(StoreError::corrupt(format!(
                "{} already contains a store; recover it instead of re-creating",
                dir.display()
            )));
        }
        let wal = Wal::create(&dir.join(WAL_FILE))?;
        Ok(Store {
            dir,
            wal,
            next_seq: 1,
            threads: 1,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Set how many worker threads snapshot encoding and decoding may use
    /// (clamped to at least 1). The on-disk bytes are identical for every
    /// width, so this is safe to change between runs of the same store.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured snapshot codec width (see [`Store::set_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The sequence number the next appended batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The highest sequence number handed out so far (0 before the first
    /// append).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Bytes of batch records currently in the WAL (what the size-based
    /// checkpoint policy meters).
    pub fn wal_record_bytes(&self) -> u64 {
        self.wal.record_bytes()
    }

    /// Whether `dir` already holds store files (snapshots or a WAL) — the
    /// probe `dn-serve` uses to choose between creating a fresh store and
    /// recovering an existing one.
    pub fn exists(dir: &Path) -> bool {
        dir.join(WAL_FILE).exists() || list_snapshots(dir).map(|s| !s.is_empty()).unwrap_or(false)
    }

    /// Classify `dir` for a serving host. [`Store::exists`] alone cannot
    /// distinguish a recoverable store from the residue of an **aborted
    /// initialization**: [`Store::create`] writes the WAL before the
    /// caller writes the initial checkpoint, so a crash in that window
    /// leaves a record-free WAL and no snapshot — a state both
    /// [`Store::create`] (refuses: "already contains a store") and
    /// [`Store::recover`] (fails: `MissingSnapshot`) reject. Hosts should
    /// delete the leftover WAL and initialize fresh in that case.
    ///
    /// A WAL *with* records but no snapshot is still classified
    /// [`StorePresence::Recoverable`] — it holds acknowledged batches,
    /// and the resulting recovery error must reach an operator rather
    /// than the data being silently discarded.
    ///
    /// # Errors
    /// I/O errors from listing the directory or scanning the WAL.
    pub fn probe(dir: &Path) -> Result<StorePresence> {
        if !dir.exists() {
            return Ok(StorePresence::Fresh);
        }
        if !list_snapshots(dir)?.is_empty() {
            return Ok(StorePresence::Recoverable);
        }
        let wal_path = dir.join(WAL_FILE);
        if !wal_path.exists() {
            return Ok(StorePresence::Fresh);
        }
        let scan = scan_wal(&wal_path)?;
        if scan.records.is_empty() {
            Ok(StorePresence::AbortedInit { wal_path })
        } else {
            Ok(StorePresence::Recoverable)
        }
    }

    /// Current size/progress counters of this store (one directory scan
    /// for the snapshot census).
    ///
    /// # Errors
    /// I/O errors from listing the directory.
    pub fn stats(&self) -> Result<StoreStats> {
        let snapshots = list_snapshots(&self.dir)?;
        Ok(StoreStats {
            wal_record_bytes: self.wal.record_bytes(),
            wal_file_bytes: self.wal.len_bytes(),
            snapshot_count: snapshots.len(),
            newest_snapshot_seq: snapshots.first().map(|&(seq, _)| seq),
            last_seq: self.last_seq(),
        })
    }

    /// Durably append one committed batch, tagged with the writer's
    /// current serving `epoch`, returning its assigned sequence number.
    /// When this returns `Ok`, the batch survives a crash.
    pub fn append_batch(&mut self, epoch: u64, batch: &[LakeDelta]) -> Result<u64> {
        let seq = self.next_seq;
        self.wal.append(seq, epoch, batch)?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Durably append one batch under a sequence number and epoch tag
    /// assigned by a **primary** — the replication twin of
    /// [`Store::append_batch`]. The record must be the exact next one:
    /// appending out of order would fabricate a log the primary never
    /// wrote, so a mismatch is a typed error, not a silent re-number.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when `seq` is not `self.next_seq()`; WAL
    /// I/O errors otherwise.
    pub fn append_replicated(&mut self, seq: u64, epoch: u64, batch: &[LakeDelta]) -> Result<()> {
        if seq != self.next_seq {
            return Err(StoreError::corrupt(format!(
                "replicated batch {seq} does not follow local seq {} (stream out of order)",
                self.last_seq()
            )));
        }
        self.wal.append(seq, epoch, batch)?;
        self.next_seq += 1;
        Ok(())
    }

    /// The verified WAL records with sequence numbers strictly greater
    /// than `from_seq` — what a tailing replica fetches. `from_seq` equal
    /// to [`Store::last_seq`] returns an empty record list (caught up);
    /// asking past a checkpoint trim returns
    /// [`WalTail::SnapshotRequired`] instead of a gapped stream.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when `from_seq` is beyond the last
    /// acknowledged sequence number (the "replica" is ahead of this log —
    /// it is tailing the wrong store), or when the on-disk log fails
    /// scanning.
    pub fn wal_after(&self, from_seq: u64) -> Result<WalTail> {
        if from_seq > self.last_seq() {
            return Err(StoreError::corrupt(format!(
                "WAL tail requested after seq {from_seq}, but the last acknowledged seq is {}",
                self.last_seq()
            )));
        }
        if from_seq == self.last_seq() {
            return Ok(WalTail::Records(Vec::new()));
        }
        let scan = scan_wal(self.wal.path())?;
        let records: Vec<crate::wal::WalRecord> = scan
            .records
            .into_iter()
            .filter(|r| r.seq > from_seq)
            .collect();
        match records.first() {
            // Appends are strictly sequential and `reset` empties the log
            // wholesale, so the surviving records are contiguous: the only
            // way `from_seq + 1` is missing is a checkpoint trim.
            Some(first) if first.seq == from_seq + 1 => Ok(WalTail::Records(records)),
            _ => {
                let snapshots = list_snapshots(&self.dir)?;
                let snapshot_seq = snapshots.first().map(|&(seq, _)| seq).ok_or_else(|| {
                    StoreError::corrupt(format!(
                        "WAL records after seq {from_seq} are trimmed and {} holds no snapshot",
                        self.dir.display()
                    ))
                })?;
                Ok(WalTail::SnapshotRequired { snapshot_seq })
            }
        }
    }

    /// The raw bytes of the newest on-disk snapshot plus the sequence
    /// number it covers through — what a bootstrapping replica fetches
    /// (the file format is self-validating, so shipping bytes is safe).
    ///
    /// # Errors
    /// [`StoreError::MissingSnapshot`] when no snapshot exists yet; I/O
    /// errors from reading.
    pub fn newest_snapshot_bytes(&self) -> Result<(u64, Vec<u8>)> {
        let snapshots = list_snapshots(&self.dir)?;
        let (seq, path) = snapshots.first().ok_or(StoreError::MissingSnapshot {
            dir: self.dir.clone(),
        })?;
        let bytes = fs::read(path).map_err(|e| StoreError::io_with_path(e, path))?;
        Ok((*seq, bytes))
    }

    /// Write a checkpoint of the given engine state, then trim the WAL and
    /// prune snapshots beyond the newest two. Returns the
    /// snapshot size in bytes.
    ///
    /// The ordering is the crash-safety argument: the snapshot lands via
    /// temp-file + rename *before* the WAL shrinks, so at every instant the
    /// directory holds a snapshot + WAL-suffix pair that reproduces the
    /// full state.
    pub fn checkpoint(
        &mut self,
        lake: &MutableLake,
        net: &DomainNet,
        epoch: u64,
        measures: &[Measure],
    ) -> Result<u64> {
        let manifest = Manifest {
            last_seq: self.last_seq(),
            epoch,
            measures: measures.to_vec(),
        };
        let path = snapshot_path(&self.dir, manifest.last_seq);
        let bytes = write_snapshot_threaded(&path, lake, net, &manifest, self.threads)?;
        self.wal.reset()?;
        for (_, old) in list_snapshots(&self.dir)?.into_iter().skip(SNAPSHOTS_KEPT) {
            fs::remove_file(&old).map_err(|e| StoreError::io_with_path(e, &old))?;
        }
        Ok(bytes)
    }

    /// Recover a store directory after a crash (or a clean shutdown — the
    /// two are indistinguishable and handled identically).
    ///
    /// Loads the newest snapshot that validates (skipping corrupt ones),
    /// then replays every WAL batch with a sequence number beyond the
    /// snapshot through `MutableLake::apply_batch` →
    /// [`DomainNet::apply_delta`] — the exact code path the live writer
    /// runs, including its failure semantics (a batch that fails mid-apply
    /// leaves its earlier ops applied and triggers a rebuild from live
    /// state) and its re-warming of the served measures after every batch,
    /// so incremental approximate-BC estimates continue the same
    /// generation-salted sequence. Any torn WAL tail is truncated.
    ///
    /// When the newest snapshot is unreadable and recovery falls back to
    /// an older one, WAL records that chained onto the *newest* snapshot
    /// cannot apply to the older base; replay stops at the first such
    /// record and the unreplayable suffix is truncated (reported via
    /// [`Recovered::wal_batches_discarded`]) — recovering the older state
    /// beats refusing outright. A sequence gap while recovering from the
    /// newest snapshot, by contrast, means acknowledged batches vanished
    /// and stays a hard [`StoreError::Corrupt`].
    pub fn recover(dir: impl Into<PathBuf>) -> Result<(Store, Recovered)> {
        Store::recover_threaded(dir, 1)
    }

    /// [`Store::recover`] with snapshot section decoding spread over up to
    /// `threads` workers; the recovered state is identical for every width
    /// (WAL replay itself stays sequential — the records are ordered). The
    /// returned store keeps `threads` as its codec width.
    pub fn recover_threaded(dir: impl Into<PathBuf>, threads: usize) -> Result<(Store, Recovered)> {
        let threads = threads.max(1);
        let dir = dir.into();
        let snapshots = list_snapshots(&dir)?;
        if snapshots.is_empty() {
            return Err(StoreError::MissingSnapshot { dir });
        }
        let mut skipped = 0usize;
        let mut loaded = None;
        let mut last_error = None;
        for (_, path) in &snapshots {
            match read_snapshot_threaded(path, threads) {
                Ok(state) => {
                    loaded = Some(state);
                    break;
                }
                Err(err) => {
                    skipped += 1;
                    last_error = Some(err);
                }
            }
        }
        let Some(state) = loaded else {
            return Err(last_error.expect("at least one snapshot was tried"));
        };
        let (mut lake, mut net, manifest) = (state.lake, state.net, state.manifest);

        let wal_path = dir.join(WAL_FILE);
        let scan = if wal_path.exists() {
            scan_wal(&wal_path)?
        } else {
            // The WAL can be legitimately absent only if a crash hit the
            // instant between snapshot rename and WAL creation; recover
            // from the snapshot alone.
            crate::wal::WalScan {
                records: Vec::new(),
                valid_len: 0,
                file_len: 0,
                torn: None,
            }
        };

        let mut last_seq = manifest.last_seq;
        let mut epoch = manifest.epoch;
        let mut replayed = 0usize;
        let mut resyncs = 0usize;
        let mut discarded = 0usize;
        let mut truncate_to = scan.valid_len;
        for record in &scan.records {
            if record.seq <= manifest.last_seq {
                continue; // already folded into the snapshot
            }
            if record.seq != last_seq + 1 {
                if skipped == 0 {
                    return Err(StoreError::corrupt(format!(
                        "WAL gap: batch {} follows batch {last_seq}",
                        record.seq
                    )));
                }
                // Fallback past the snapshot these records extended: drop
                // the unreplayable suffix so future appends (which resume
                // at last_seq + 1) keep the on-disk sequence monotone.
                truncate_to = record.offset;
                discarded = scan
                    .records
                    .iter()
                    .filter(|r| r.offset >= record.offset)
                    .count();
                break;
            }
            match lake.apply_batch(record.batch.iter()) {
                Ok(effects) => {
                    if net.apply_delta(&lake, &effects).is_err() {
                        net.refresh(&lake);
                        resyncs += 1;
                    }
                }
                Err(_) => {
                    // Mirror `Writer::commit`: the failing op stopped the
                    // batch with earlier ops applied; rebuild the net from
                    // the lake's live state and carry on.
                    net.refresh(&lake);
                    resyncs += 1;
                }
            }
            net.warm_rankings(&manifest.measures);
            last_seq = record.seq;
            // The record was committed while `record.epoch` was published;
            // the live writer's next publish would have been epoch + 1, so
            // recovery resumes numbering there (never below the snapshot's).
            epoch = epoch.max(record.epoch + 1);
            replayed += 1;
        }

        let wal = Wal::open_truncated(&wal_path, truncate_to)?;
        let store = Store {
            dir,
            wal,
            next_seq: last_seq + 1,
            threads,
        };
        let recovered = Recovered {
            lake,
            net,
            epoch,
            snapshot_epoch: manifest.epoch,
            measures: manifest.measures,
            last_seq,
            replayed_batches: replayed,
            resyncs,
            snapshots_skipped: skipped,
            wal_batches_discarded: discarded,
        };
        Ok((store, recovered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domainnet::DomainNetBuilder;
    use lake::delta::LakeView;
    use lake::table::TableBuilder;

    fn test_dir(name: &str) -> PathBuf {
        // Store::create wants to create the directory itself.
        let dir = crate::testutil::scratch_dir(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn engine() -> (MutableLake, DomainNet, Vec<Measure>) {
        let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
        let net = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(&lake);
        let measures = vec![Measure::lcc(), Measure::exact_bc()];
        net.warm_rankings(&measures);
        (lake, net, measures)
    }

    fn delta(i: u32) -> LakeDelta {
        LakeDelta::new().add_table(
            TableBuilder::new(format!("extra_{i}"))
                .column("animal", ["Jaguar", "Okapi", "Zebra"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn create_checkpoint_recover_round_trip() {
        let dir = test_dir("roundtrip");
        let (mut lake, mut net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();

        // Two durable batches after the checkpoint.
        for i in 0..2u32 {
            let batch = vec![delta(i)];
            store.append_batch(0, &batch).unwrap();
            let effects = lake.apply_batch(batch.iter()).unwrap();
            net.apply_delta(&lake, &effects).unwrap();
            net.warm_rankings(&measures);
        }
        drop(store); // "crash"

        let (store, recovered) = Store::recover(&dir).unwrap();
        assert_eq!(recovered.replayed_batches, 2);
        assert_eq!(recovered.resyncs, 0);
        assert_eq!(recovered.last_seq, 2);
        assert_eq!(store.next_seq(), 3);
        assert_eq!(recovered.lake.live_table_names(), lake.live_table_names());
        assert_eq!(recovered.net.export_state(), net.export_state());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_trims_wal_and_prunes_snapshots() {
        let dir = test_dir("trim");
        let (mut lake, mut net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();
        for i in 0..3u32 {
            let batch = vec![delta(i)];
            store.append_batch(0, &batch).unwrap();
            let effects = lake.apply_batch(batch.iter()).unwrap();
            net.apply_delta(&lake, &effects).unwrap();
            net.warm_rankings(&measures);
            store
                .checkpoint(&lake, &net, u64::from(i) + 1, &measures)
                .unwrap();
            assert_eq!(store.wal_record_bytes(), 0, "checkpoint trims the log");
        }
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), SNAPSHOTS_KEPT, "old snapshots pruned");
        assert_eq!(snaps[0].0, 3, "newest snapshot covers the last batch");

        let (_, recovered) = Store::recover(&dir).unwrap();
        assert_eq!(recovered.replayed_batches, 0, "everything checkpointed");
        assert_eq!(recovered.net.export_state(), net.export_state());
        assert_eq!(recovered.epoch, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_falls_back_to_an_older_snapshot() {
        let dir = test_dir("fallback");
        let (mut lake, mut net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();
        let batch = vec![delta(0)];
        store.append_batch(0, &batch).unwrap();
        let effects = lake.apply_batch(batch.iter()).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        net.warm_rankings(&measures);
        store.checkpoint(&lake, &net, 1, &measures).unwrap();
        drop(store);

        // Corrupt the newest snapshot; recovery must fall back to seq 0.
        // The WAL was trimmed at the newest checkpoint, so the fallback
        // recovers the *older* state — strictly better than refusing.
        let newest = list_snapshots(&dir).unwrap()[0].1.clone();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let (_, recovered) = Store::recover(&dir).unwrap();
        assert_eq!(recovered.snapshots_skipped, 1);
        assert_eq!(recovered.epoch, 0);
        assert_eq!(
            LakeView::value_count(&recovered.lake),
            lake::fixtures::running_example().value_count()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fallback_with_unreplayable_wal_suffix_truncates_it() {
        // Checkpoint at seq 1 trimmed the WAL; batches 2 and 3 were then
        // appended. If snapshot-1 rots, those records cannot chain onto
        // the older snapshot-0 — recovery must return the snapshot-0
        // state and truncate the unreplayable suffix instead of refusing.
        let dir = test_dir("fallback_wal");
        let (mut lake, mut net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();
        let baseline_tables = lake.live_table_names().len();
        for i in 0..3u32 {
            let batch = vec![delta(i)];
            store.append_batch(0, &batch).unwrap();
            let effects = lake.apply_batch(batch.iter()).unwrap();
            net.apply_delta(&lake, &effects).unwrap();
            net.warm_rankings(&measures);
            if i == 0 {
                store.checkpoint(&lake, &net, 1, &measures).unwrap();
            }
        }
        drop(store);

        let newest = list_snapshots(&dir).unwrap()[0].1.clone();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let (mut store, recovered) = Store::recover(&dir).unwrap();
        assert_eq!(recovered.snapshots_skipped, 1);
        assert_eq!(recovered.replayed_batches, 0);
        assert_eq!(recovered.wal_batches_discarded, 2, "seqs 2 and 3 dropped");
        assert_eq!(recovered.last_seq, 0);
        assert_eq!(
            recovered.lake.live_table_names().len(),
            baseline_tables,
            "the snapshot-0 state came back"
        );
        assert_eq!(store.wal_record_bytes(), 0, "suffix truncated");
        // The store keeps working: appends resume at seq 1 and a fresh
        // recovery replays them.
        let batch = vec![delta(9)];
        assert_eq!(store.append_batch(0, &batch).unwrap(), 1);
        drop(store);
        let newest = list_snapshots(&dir).unwrap()[0].1.clone();
        fs::remove_file(&newest).unwrap(); // drop the corrupt file entirely
        let (_, recovered) = Store::recover(&dir).unwrap();
        assert_eq!(recovered.replayed_batches, 1);
        assert!(recovered.lake.table("extra_9").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn probe_classifies_every_directory_state() {
        let dir = test_dir("probe");
        assert_eq!(
            Store::probe(&dir).unwrap(),
            StorePresence::Fresh,
            "missing directory"
        );
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(Store::probe(&dir).unwrap(), StorePresence::Fresh);

        // Store::create writes the WAL; before the initial checkpoint the
        // directory is an aborted init (exactly the crash window a host
        // must recover from by clearing the record-free WAL).
        let (mut lake, mut net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        match Store::probe(&dir).unwrap() {
            StorePresence::AbortedInit { wal_path } => assert!(wal_path.exists()),
            other => panic!("expected AbortedInit, got {other:?}"),
        }

        store.checkpoint(&lake, &net, 0, &measures).unwrap();
        assert_eq!(Store::probe(&dir).unwrap(), StorePresence::Recoverable);

        // A WAL with records but no snapshot holds acknowledged batches:
        // still Recoverable, so the recovery error reaches an operator.
        let batch = vec![delta(0)];
        store.append_batch(0, &batch).unwrap();
        let effects = lake.apply_batch(batch.iter()).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        drop(store);
        for (_, snap) in list_snapshots(&dir).unwrap() {
            fs::remove_file(snap).unwrap();
        }
        assert_eq!(Store::probe(&dir).unwrap(), StorePresence::Recoverable);
        assert!(matches!(
            Store::recover(&dir).unwrap_err(),
            StoreError::MissingSnapshot { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = test_dir("refuse");
        let (lake, net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();
        drop(store);
        assert!(matches!(
            Store::create(&dir).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_on_an_empty_dir_is_missing_snapshot() {
        let dir = test_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Store::recover(&dir).unwrap_err(),
            StoreError::MissingSnapshot { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_after_ships_suffixes_and_detects_trims() {
        let dir = test_dir("ship");
        let (mut lake, mut net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();
        for i in 0..3u32 {
            let batch = vec![delta(i)];
            store.append_batch(u64::from(i), &batch).unwrap();
            let effects = lake.apply_batch(batch.iter()).unwrap();
            net.apply_delta(&lake, &effects).unwrap();
        }

        // Full tail, partial tail, caught up.
        match store.wal_after(0).unwrap() {
            WalTail::Records(r) => {
                assert_eq!(r.iter().map(|r| r.seq).collect::<Vec<_>>(), [1, 2, 3]);
                assert_eq!(r[2].epoch, 2, "epoch tags ride along");
            }
            other => panic!("expected records, got {other:?}"),
        }
        match store.wal_after(2).unwrap() {
            WalTail::Records(r) => assert_eq!(r.len(), 1),
            other => panic!("expected records, got {other:?}"),
        }
        match store.wal_after(3).unwrap() {
            WalTail::Records(r) => assert!(r.is_empty(), "caught up"),
            other => panic!("expected records, got {other:?}"),
        }
        // Ahead of the log: typed error, not an empty answer.
        assert!(matches!(
            store.wal_after(4).unwrap_err(),
            StoreError::Corrupt { .. }
        ));

        // A checkpoint trims the log; a replica still at seq 1 must be
        // told to re-bootstrap, not handed a gapped stream.
        net.warm_rankings(&measures);
        store.checkpoint(&lake, &net, 3, &measures).unwrap();
        match store.wal_after(1).unwrap() {
            WalTail::SnapshotRequired { snapshot_seq } => assert_eq!(snapshot_seq, 3),
            other => panic!("expected SnapshotRequired, got {other:?}"),
        }
        match store.wal_after(3).unwrap() {
            WalTail::Records(r) => assert!(r.is_empty(), "caught up post-trim"),
            other => panic!("expected records, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bytes_install_into_a_recoverable_replica_dir() {
        let dir = test_dir("bootstrap_src");
        let replica_dir = test_dir("bootstrap_dst");
        fs::remove_dir_all(&replica_dir).ok();
        let (mut lake, mut net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();
        let batch = vec![delta(0)];
        store.append_batch(0, &batch).unwrap();
        let effects = lake.apply_batch(batch.iter()).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        net.warm_rankings(&measures);
        store.checkpoint(&lake, &net, 1, &measures).unwrap();

        let (seq, bytes) = store.newest_snapshot_bytes().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(install_snapshot(&replica_dir, &bytes).unwrap(), 1);
        assert_eq!(
            Store::probe(&replica_dir).unwrap(),
            StorePresence::Recoverable
        );
        let (replica, recovered) = Store::recover(&replica_dir).unwrap();
        assert_eq!(recovered.last_seq, 1);
        assert_eq!(recovered.net.export_state(), net.export_state());
        assert_eq!(replica.next_seq(), 2, "tailing resumes after the snapshot");

        // Refuses a second install and refuses corrupt bytes.
        assert!(matches!(
            install_snapshot(&replica_dir, &bytes).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        let fresh = test_dir("bootstrap_bad");
        fs::remove_dir_all(&fresh).ok();
        assert!(install_snapshot(&fresh, &bad).is_err());
        assert!(
            !Store::exists(&fresh),
            "a failed install leaves no half-store behind"
        );
        for d in [&dir, &replica_dir] {
            fs::remove_dir_all(d).unwrap();
        }
        fs::remove_dir_all(&fresh).ok();
    }

    #[test]
    fn append_replicated_refuses_out_of_order_streams() {
        let dir = test_dir("replicated_seq");
        let (lake, net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();
        let batch = vec![delta(0)];
        store.append_replicated(1, 7, &batch).unwrap();
        assert_eq!(store.last_seq(), 1);
        // A skip and a replay are both stream corruption.
        assert!(matches!(
            store.append_replicated(3, 7, &batch).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        assert!(matches!(
            store.append_replicated(1, 7, &batch).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        // The accepted record carries the primary's epoch tag.
        let scan = scan_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].epoch, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_batches_replay_with_the_live_resync_semantics() {
        let dir = test_dir("resync");
        let (mut lake, mut net, measures) = engine();
        let mut store = Store::create(&dir).unwrap();
        store.checkpoint(&lake, &net, 0, &measures).unwrap();

        // A batch whose second delta fails: the first sticks, live path
        // resyncs. Log it exactly as the live writer would have.
        let batch = vec![delta(0), LakeDelta::new().remove_table("ghost")];
        store.append_batch(0, &batch).unwrap();
        assert!(lake.apply_batch(batch.iter()).is_err());
        net.refresh(&lake);
        net.warm_rankings(&measures);
        drop(store);

        let (_, recovered) = Store::recover(&dir).unwrap();
        assert_eq!(recovered.resyncs, 1);
        assert_eq!(
            recovered.lake.live_table_names(),
            lake.live_table_names(),
            "partial batch application is reproduced"
        );
        assert_eq!(recovered.net.export_state(), net.export_state());
        fs::remove_dir_all(&dir).unwrap();
    }
}
