//! The typed error surface of the durability subsystem.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors produced while persisting or recovering DomainNet state.
///
/// Every corruption mode the hardening tests exercise — truncated files,
/// flipped bytes, foreign files, future format versions — maps to a typed
/// variant here. The store **never panics** on malformed input and never
/// yields partially loaded state: decoding validates every cross-reference
/// before any lake, graph, or net becomes observable.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error while reading or writing store files.
    Io {
        /// The path involved, when known.
        path: Option<PathBuf>,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A file did not start with the expected magic bytes (it is not a
    /// snapshot / WAL of this store, or its header was corrupted).
    BadMagic {
        /// What the file actually started with.
        found: Vec<u8>,
        /// The magic this reader expected.
        expected: &'static [u8],
    },
    /// The file declares a format version this build does not understand
    /// (e.g. it was written by a newer release).
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
        /// The newest version this build can read.
        supported: u32,
    },
    /// The file ended before a declared structure was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: String,
    },
    /// A section's checksum did not match its payload.
    SectionCrc {
        /// The section whose CRC failed.
        section: &'static str,
    },
    /// The bytes decoded, but a structural invariant or cross-reference
    /// check failed (the typed refusal to yield a half-loaded state).
    Corrupt {
        /// What was inconsistent.
        context: String,
    },
    /// Recovery found no snapshot to start from in the directory.
    MissingSnapshot {
        /// The directory that was searched.
        dir: PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => match path {
                Some(p) => write!(f, "store I/O error on {}: {source}", p.display()),
                None => write!(f, "store I/O error: {source}"),
            },
            StoreError::BadMagic { found, expected } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            StoreError::Truncated { context } => {
                write!(f, "file truncated while decoding {context}")
            }
            StoreError::SectionCrc { section } => {
                write!(f, "checksum mismatch in section '{section}'")
            }
            StoreError::Corrupt { context } => write!(f, "corrupt store state: {context}"),
            StoreError::MissingSnapshot { dir } => {
                write!(f, "no usable snapshot found in {}", dir.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(source: io::Error) -> Self {
        StoreError::Io { path: None, source }
    }
}

impl StoreError {
    /// Attach a path to an I/O error for better diagnostics.
    pub fn io_with_path(source: io::Error, path: impl Into<PathBuf>) -> Self {
        StoreError::Io {
            path: Some(path.into()),
            source,
        }
    }

    /// Shorthand for a [`StoreError::Corrupt`] with a formatted context.
    pub fn corrupt(context: impl Into<String>) -> Self {
        StoreError::Corrupt {
            context: context.into(),
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = StoreError::SectionCrc { section: "lake" };
        assert!(err.to_string().contains("lake"));
        let err = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(err.to_string().contains('9'));
        let err = StoreError::Truncated {
            context: "section table".into(),
        };
        assert!(err.to_string().contains("section table"));
    }

    #[test]
    fn io_errors_keep_their_source() {
        let err: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&err).is_some());
        let err = StoreError::io_with_path(io::Error::other("denied"), "/tmp/x");
        assert!(err.to_string().contains("/tmp/x"));
    }
}
