//! On-disk layout of a *sharded* store: one [`crate::Store`] per shard
//! under a common root, tied together by a small JSON manifest and an
//! optional rebalance-intent file.
//!
//! ```text
//! <root>/
//!   shards.json            # {"format":1,"shards":N} — written first, atomically
//!   rebalance.intent       # present only while a cross-shard migration runs
//!   shard-0/               # a full, independent Store (snapshots + WAL)
//!   shard-1/
//!   ...
//! ```
//!
//! The manifest is written *before* any shard store is created, so a crash
//! during initialization leaves a root whose shard count is already known;
//! recovery then treats every missing or aborted shard directory as a
//! fresh, empty shard (nothing acknowledged can live there — a shard only
//! acknowledges commits after its own WAL append). The intent file is the
//! crash guard for cross-shard component migrations: it is written (tmp +
//! rename, fsynced) before the first table moves and removed only after
//! the whole move-set has been re-homed, so recovery can always finish a
//! half-done rebalance instead of leaving one component split across two
//! shards.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::{Result, StoreError};

/// File name of the shard-count manifest under the sharded root.
pub const SHARD_MANIFEST_FILE: &str = "shards.json";
/// File name of the rebalance-intent file under the sharded root.
pub const REBALANCE_INTENT_FILE: &str = "rebalance.intent";
/// Manifest format version this build reads and writes.
pub const SHARD_MANIFEST_FORMAT: u32 = 1;

/// The sharded root's manifest: how many shard stores live below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Manifest format version (see [`SHARD_MANIFEST_FORMAT`]).
    pub format: u32,
    /// Number of shard engines/stores under this root.
    pub shards: usize,
}

/// One table being re-homed by a cross-shard component migration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableMove {
    /// Live table name being moved.
    pub table: String,
    /// Shard index the table is moving away from.
    pub from: usize,
    /// Shard index the table is moving into.
    pub to: usize,
}

/// The durable record of an in-flight rebalance: every table of the
/// move-set, written before the first one moves.
///
/// Recovery semantics per entry (add-to-target happens before
/// remove-from-source, so the table is never lost):
/// * table live on `from` only — the move never started; redo it;
/// * table live on both — the add landed, the remove did not; finish it;
/// * table live on `to` only — the move completed; nothing to do.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RebalanceIntent {
    /// The tables being re-homed, in migration order.
    pub moves: Vec<TableMove>,
}

/// The directory of one shard's store under the sharded root.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

/// Whether `root` holds a sharded store (i.e. a manifest).
pub fn sharded_store_exists(root: &Path) -> bool {
    root.join(SHARD_MANIFEST_FILE).is_file()
}

/// Atomically write a small file: write to a `.tmp` sibling, fsync, rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file =
            fs::File::create(&tmp).map_err(|e| StoreError::io_with_path(e, tmp.clone()))?;
        file.write_all(bytes)
            .map_err(|e| StoreError::io_with_path(e, tmp.clone()))?;
        file.sync_all()
            .map_err(|e| StoreError::io_with_path(e, tmp.clone()))?;
    }
    fs::rename(&tmp, path).map_err(|e| StoreError::io_with_path(e, path.to_path_buf()))?;
    Ok(())
}

/// Write the shard manifest under `root` (creating the root if needed).
/// Must be called before any shard store is created, so a crash mid-init
/// leaves a recoverable root.
///
/// # Errors
/// [`StoreError::Corrupt`] on a zero shard count; I/O errors otherwise.
pub fn write_shard_manifest(root: &Path, shards: usize) -> Result<()> {
    if shards == 0 {
        return Err(StoreError::corrupt("shard manifest needs >= 1 shard"));
    }
    fs::create_dir_all(root).map_err(|e| StoreError::io_with_path(e, root.to_path_buf()))?;
    let manifest = ShardManifest {
        format: SHARD_MANIFEST_FORMAT,
        shards,
    };
    let json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| StoreError::corrupt(format!("encoding shard manifest: {e}")))?;
    write_atomic(&root.join(SHARD_MANIFEST_FILE), json.as_bytes())
}

/// Read the shard manifest under `root`. `Ok(None)` when no manifest
/// exists (the root is not a sharded store).
///
/// # Errors
/// [`StoreError::Corrupt`] for unparseable manifests, zero shard counts,
/// or a format version this build does not understand.
pub fn read_shard_manifest(root: &Path) -> Result<Option<ShardManifest>> {
    let path = root.join(SHARD_MANIFEST_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io_with_path(e, path)),
    };
    let manifest: ShardManifest = serde_json::from_str(&text)
        .map_err(|e| StoreError::corrupt(format!("shard manifest {}: {e}", path.display())))?;
    if manifest.format > SHARD_MANIFEST_FORMAT {
        return Err(StoreError::UnsupportedVersion {
            found: manifest.format,
            supported: SHARD_MANIFEST_FORMAT,
        });
    }
    if manifest.shards == 0 {
        return Err(StoreError::corrupt(format!(
            "shard manifest {} declares 0 shards",
            path.display()
        )));
    }
    Ok(Some(manifest))
}

/// Durably record an in-flight rebalance before the first table moves.
pub fn write_rebalance_intent(root: &Path, intent: &RebalanceIntent) -> Result<()> {
    let json = serde_json::to_string_pretty(intent)
        .map_err(|e| StoreError::corrupt(format!("encoding rebalance intent: {e}")))?;
    write_atomic(&root.join(REBALANCE_INTENT_FILE), json.as_bytes())
}

/// Read a pending rebalance intent, if one survived a crash. `Ok(None)`
/// when no intent file exists (the common case).
pub fn read_rebalance_intent(root: &Path) -> Result<Option<RebalanceIntent>> {
    let path = root.join(REBALANCE_INTENT_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io_with_path(e, path)),
    };
    let intent: RebalanceIntent = serde_json::from_str(&text)
        .map_err(|e| StoreError::corrupt(format!("rebalance intent {}: {e}", path.display())))?;
    Ok(Some(intent))
}

/// Remove the intent file after the whole move-set has been re-homed
/// (idempotent: a missing file is fine).
pub fn clear_rebalance_intent(root: &Path) -> Result<()> {
    let path = root.join(REBALANCE_INTENT_FILE);
    match fs::remove_file(&path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(StoreError::io_with_path(e, path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;

    #[test]
    fn manifest_round_trips_and_is_written_atomically() {
        let root = scratch_dir("shard_manifest");
        assert!(!sharded_store_exists(&root));
        assert!(read_shard_manifest(&root).unwrap().is_none());

        write_shard_manifest(&root, 4).unwrap();
        assert!(sharded_store_exists(&root));
        let manifest = read_shard_manifest(&root).unwrap().unwrap();
        assert_eq!(manifest.shards, 4);
        assert_eq!(manifest.format, SHARD_MANIFEST_FORMAT);
        // No tmp sibling left behind.
        assert!(!root.join("shards.tmp").exists());

        // Rewriting replaces the count.
        write_shard_manifest(&root, 2).unwrap();
        assert_eq!(read_shard_manifest(&root).unwrap().unwrap().shards, 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn zero_shards_and_garbage_manifests_are_typed_errors() {
        let root = scratch_dir("shard_manifest_bad");
        assert!(write_shard_manifest(&root, 0).is_err());
        std::fs::write(root.join(SHARD_MANIFEST_FILE), b"not json").unwrap();
        assert!(matches!(
            read_shard_manifest(&root),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::write(
            root.join(SHARD_MANIFEST_FILE),
            serde_json::to_string(&ShardManifest {
                format: SHARD_MANIFEST_FORMAT + 1,
                shards: 2,
            })
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            read_shard_manifest(&root),
            Err(StoreError::UnsupportedVersion { .. })
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn intent_round_trips_and_clears_idempotently() {
        let root = scratch_dir("shard_intent");
        std::fs::create_dir_all(&root).unwrap();
        assert!(read_rebalance_intent(&root).unwrap().is_none());
        clear_rebalance_intent(&root).unwrap(); // missing file is fine

        let intent = RebalanceIntent {
            moves: vec![
                TableMove {
                    table: "zoo".into(),
                    from: 2,
                    to: 0,
                },
                TableMove {
                    table: "cars".into(),
                    from: 1,
                    to: 0,
                },
            ],
        };
        write_rebalance_intent(&root, &intent).unwrap();
        assert_eq!(read_rebalance_intent(&root).unwrap().unwrap(), intent);
        clear_rebalance_intent(&root).unwrap();
        assert!(read_rebalance_intent(&root).unwrap().is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shard_dirs_are_stable_names() {
        let root = PathBuf::from("/data/dn");
        assert_eq!(shard_dir(&root, 0), PathBuf::from("/data/dn/shard-0"));
        assert_eq!(shard_dir(&root, 12), PathBuf::from("/data/dn/shard-12"));
    }
}
