//! A tiny incremental 64-bit digest for replica state comparison.
//!
//! The replication insurance layer (see `dn-service`) periodically folds a
//! follower's entire observable state — identity counts, edge counts, and
//! every ranking entry's value string plus raw `f64::to_bits` score — into
//! one `u64` and compares it against the primary's digest at the same
//! epoch. The hash here is FNV-1a (64-bit): deterministic across
//! platforms, allocation-free, and sensitive to both content and order,
//! which is exactly what an equality witness needs. It is **not** a
//! cryptographic hash; the adversary is bit-rot and software divergence,
//! not forgery.
//!
//! Multi-byte values are folded in little-endian order and strings are
//! length-prefixed, so concatenation ambiguities ("ab"+"c" vs "a"+"bc")
//! cannot collide by construction.

/// An incremental FNV-1a (64-bit) digest.
#[derive(Debug, Clone)]
pub struct Digest64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest64 {
    fn default() -> Self {
        Digest64::new()
    }
}

impl Digest64 {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Digest64 {
        Digest64 { state: FNV_OFFSET }
    }

    /// Fold raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold one `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Fold one length-prefixed string into the digest.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything folded so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Digest64::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut d = Digest64::new();
        d.write_bytes(b"a");
        assert_eq!(d.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut d = Digest64::new();
        d.write_bytes(b"foobar");
        assert_eq!(d.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn order_and_framing_matter() {
        let mut ab_c = Digest64::new();
        ab_c.write_str("ab");
        ab_c.write_str("c");
        let mut a_bc = Digest64::new();
        a_bc.write_str("a");
        a_bc.write_str("bc");
        assert_ne!(
            ab_c.finish(),
            a_bc.finish(),
            "length prefixes forbid concatenation collisions"
        );

        let mut fwd = Digest64::new();
        fwd.write_u64(1);
        fwd.write_u64(2);
        let mut rev = Digest64::new();
        rev.write_u64(2);
        rev.write_u64(1);
        assert_ne!(fwd.finish(), rev.finish(), "order-sensitive");
    }

    #[test]
    fn score_bits_distinguish_equal_looking_floats() {
        // -0.0 == 0.0 under `==` but their bit patterns differ; the digest
        // must see the difference, because `to_bits` equality is the
        // replication contract.
        let mut pos = Digest64::new();
        pos.write_u64(0.0f64.to_bits());
        let mut neg = Digest64::new();
        neg.write_u64((-0.0f64).to_bits());
        assert_ne!(pos.finish(), neg.finish());
    }
}
