//! Primitive binary encoding: little-endian integers, length-prefixed
//! strings, CRC-32, and the [`Measure`] wire format.
//!
//! The snapshot and WAL formats are hand-rolled rather than serde-based so
//! that floating-point scores round-trip **bit-exactly** (`f64::to_bits`)
//! and so every read is bounds-checked into a typed
//! [`StoreError`] — not a panic. Counts are written
//! as `u64` and validated against the number of bytes actually remaining
//! before any allocation, so a corrupted length cannot trigger an
//! out-of-memory abort.

use dn_graph::approx_bc::{ApproxBcConfig, SamplingStrategy};
use dn_graph::lcc::LccMethod;
use domainnet::Measure;

use crate::error::{Result, StoreError};

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the polynomial used by gzip/zip/png)
// ---------------------------------------------------------------------------

/// The 8 slicing tables: `TABLES[0]` is the classic byte-at-a-time table,
/// `TABLES[k][b]` extends it to bytes `k` positions deeper, letting the
/// hot loop fold 8 input bytes per iteration ("slicing-by-8" — snapshot
/// sections run to megabytes, and checksum throughput is on the cold-start
/// critical path).
static CRC32_TABLES: std::sync::OnceLock<Box<[[u32; 256]; 8]>> = std::sync::OnceLock::new();

fn crc32_tables() -> &'static [[u32; 256]; 8] {
    CRC32_TABLES.get_or_init(|| {
        let mut tables = Box::new([[0u32; 256]; 8]);
        for i in 0..256usize {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            tables[0][i] = crc;
        }
        for i in 0..256usize {
            let mut crc = tables[0][i];
            for k in 1..8 {
                crc = (crc >> 8) ^ tables[0][(crc & 0xFF) as usize];
                tables[k][i] = crc;
            }
        }
        tables
    })
}

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let tables = crc32_tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes"));
        crc = tables[7][(lo & 0xFF) as usize]
            ^ tables[6][((lo >> 8) & 0xFF) as usize]
            ^ tables[5][((lo >> 16) & 0xFF) as usize]
            ^ tables[4][(lo >> 24) as usize]
            ^ tables[3][(hi & 0xFF) as usize]
            ^ tables[2][((hi >> 8) & 0xFF) as usize]
            ^ tables[1][((hi >> 16) & 0xFF) as usize]
            ^ tables[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ tables[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An append-only little-endian byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Append raw bytes without a length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over encoded bytes.
///
/// Every read error names the `context` the reader was constructed with
/// (usually the section being decoded), so corruption reports point at the
/// right part of the file.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, tagging errors with `context`.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        ByteReader {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(&self, what: &str) -> StoreError {
        StoreError::Truncated {
            context: format!("{}: {what}", self.context),
        }
    }

    /// Fail unless exactly everything was consumed (trailing garbage is
    /// corruption, not padding).
    pub fn expect_exhausted(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(StoreError::corrupt(format!(
                "{}: {} trailing bytes after the last field",
                self.context,
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated("raw bytes"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; anything but 0/1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::corrupt(format!(
                "{}: invalid bool byte {other}",
                self.context
            ))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `u64` count that prefixes items of at least `min_item_bytes`
    /// each, rejecting counts the remaining bytes cannot possibly hold —
    /// the guard that keeps corrupted lengths from allocating gigabytes.
    pub fn get_count(&mut self, min_item_bytes: usize) -> Result<usize> {
        let count = self.get_u64()?;
        let count = usize::try_from(count).map_err(|_| {
            StoreError::corrupt(format!("{}: count {count} overflows", self.context))
        })?;
        match count.checked_mul(min_item_bytes.max(1)) {
            Some(need) if need <= self.remaining() => Ok(count),
            _ => Err(self.truncated("counted items")),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(format!("{}: string is not UTF-8", self.context)))
    }

    /// Read a counted vector of `u32`s.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>> {
        let count = self.get_count(4)?;
        (0..count).map(|_| self.get_u32()).collect()
    }

    /// Read a counted vector of `u64`s.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let count = self.get_count(8)?;
        (0..count).map(|_| self.get_u64()).collect()
    }
}

/// Write a counted vector of `u32`s.
pub fn put_u32_vec(w: &mut ByteWriter, items: &[u32]) {
    w.put_u64(items.len() as u64);
    for &v in items {
        w.put_u32(v);
    }
}

/// Write a counted vector of `u64`s.
pub fn put_u64_vec(w: &mut ByteWriter, items: &[u64]) {
    w.put_u64(items.len() as u64);
    for &v in items {
        w.put_u64(v);
    }
}

// ---------------------------------------------------------------------------
// Hex (binary payloads inside JSON envelopes)
// ---------------------------------------------------------------------------

/// Lowercase hex encoding of a byte slice. The replication endpoints ship
/// snapshot files (a binary format) inside JSON response bodies, and hex
/// is the simplest encoding that survives a UTF-8 transport.
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[usize::from(b >> 4)] as char);
        out.push(DIGITS[usize::from(b & 0xF)] as char);
    }
    out
}

/// Decode a string produced by [`to_hex`] (either letter case accepted).
///
/// # Errors
/// [`StoreError::Corrupt`] on an odd length or a non-hex character.
pub fn from_hex(text: &str) -> Result<Vec<u8>> {
    if text.len() % 2 != 0 {
        return Err(StoreError::corrupt(format!(
            "hex payload has odd length {}",
            text.len()
        )));
    }
    let nibble = |c: u8| -> Result<u8> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            other => Err(StoreError::corrupt(format!(
                "invalid hex character {:?}",
                other as char
            ))),
        }
    };
    let raw = text.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Measure wire format
// ---------------------------------------------------------------------------

const TAG_LCC: u8 = 0;
const TAG_EXACT_BC: u8 = 1;
const TAG_APPROX_BC: u8 = 2;

/// Encode a [`Measure`] (stable across runs; part of the snapshot format).
pub fn put_measure(w: &mut ByteWriter, measure: Measure) {
    match measure {
        Measure::Lcc(method) => {
            w.put_u8(TAG_LCC);
            w.put_u8(match method {
                LccMethod::ValueNeighborJaccard => 0,
                LccMethod::AttributeJaccard => 1,
            });
        }
        Measure::ExactBc => {
            w.put_u8(TAG_EXACT_BC);
        }
        Measure::ApproxBc(config) => {
            w.put_u8(TAG_APPROX_BC);
            w.put_u64(config.samples as u64);
            w.put_u8(match config.strategy {
                SamplingStrategy::Uniform => 0,
                SamplingStrategy::DegreeProportional => 1,
            });
            w.put_u64(config.seed);
        }
    }
}

/// Decode a [`Measure`] written by [`put_measure`].
pub fn get_measure(r: &mut ByteReader<'_>) -> Result<Measure> {
    let invalid = |what: String| StoreError::corrupt(format!("measure: {what}"));
    match r.get_u8()? {
        TAG_LCC => {
            let method = match r.get_u8()? {
                0 => LccMethod::ValueNeighborJaccard,
                1 => LccMethod::AttributeJaccard,
                other => return Err(invalid(format!("unknown LCC method {other}"))),
            };
            Ok(Measure::Lcc(method))
        }
        TAG_EXACT_BC => Ok(Measure::ExactBc),
        TAG_APPROX_BC => {
            let samples = r.get_u64()? as usize;
            let strategy = match r.get_u8()? {
                0 => SamplingStrategy::Uniform,
                1 => SamplingStrategy::DegreeProportional,
                other => return Err(invalid(format!("unknown sampling strategy {other}"))),
            };
            let seed = r.get_u64()?;
            Ok(Measure::ApproxBc(ApproxBcConfig {
                samples,
                strategy,
                seed,
            }))
        }
        other => Err(invalid(format!("unknown measure tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_f64(1.0 / 3.0);
        w.put_str("héllo, wörld");
        put_u32_vec(&mut w, &[1, 2, 3]);
        put_u64_vec(&mut w, &[u64::MAX]);
        let bytes = w.into_inner();

        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), 1.0 / 3.0);
        assert_eq!(r.get_str().unwrap(), "héllo, wörld");
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![u64::MAX]);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes[..5], "short");
        let err = r.get_u64().unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }), "{err}");
        assert!(err.to_string().contains("short"));
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes, "count");
        assert!(matches!(
            r.get_u32_vec().unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let bytes = [3u8];
        let mut r = ByteReader::new(&bytes, "bool");
        assert!(matches!(
            r.get_bool().unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }

    #[test]
    fn measures_round_trip() {
        let measures = [
            Measure::lcc(),
            Measure::Lcc(LccMethod::AttributeJaccard),
            Measure::exact_bc(),
            Measure::ApproxBc(ApproxBcConfig {
                samples: 512,
                strategy: SamplingStrategy::DegreeProportional,
                seed: 0xFEED,
            }),
        ];
        for measure in measures {
            let mut w = ByteWriter::new();
            put_measure(&mut w, measure);
            let bytes = w.into_inner();
            let mut r = ByteReader::new(&bytes, "measure");
            assert_eq!(get_measure(&mut r).unwrap(), measure);
            r.expect_exhausted().unwrap();
        }
    }

    #[test]
    fn unknown_measure_tag_is_corrupt() {
        let bytes = [9u8];
        let mut r = ByteReader::new(&bytes, "measure");
        assert!(matches!(
            get_measure(&mut r).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let all: Vec<u8> = (0..=255u8).collect();
        let text = to_hex(&all);
        assert_eq!(text.len(), 512);
        assert_eq!(from_hex(&text).unwrap(), all);
        assert_eq!(from_hex(&text.to_uppercase()).unwrap(), all);
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert!(matches!(
            from_hex("abc").unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        assert!(matches!(
            from_hex("zz").unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }
}
