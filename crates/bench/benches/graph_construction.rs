//! Criterion bench: DomainNet graph construction from a lake catalog
//! (Step 1 of the pipeline; §5.4 reports ~1.5 min for the TUS benchmark,
//! dominated by scanning the tables).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use datagen::sb::SbGenerator;
use datagen::tus::{TusConfig, TusGenerator};
use domainnet::pipeline::DomainNetBuilder;

fn bench_graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    group.sample_size(10);

    let sb = SbGenerator::new(1).generate();
    group.bench_function("sb", |b| {
        b.iter(|| DomainNetBuilder::new().build(&sb.catalog))
    });

    for (name, seed) in [("tus_small", 11u64), ("tus_medium", 12u64)] {
        let cfg = if name == "tus_small" {
            TusConfig::small(seed)
        } else {
            TusConfig {
                seed,
                domain_count: 24,
                max_domain_vocab: 1200,
                rows_per_source: 500,
                ..TusConfig::default()
            }
        };
        let lake = TusGenerator::new(cfg).generate();
        group.bench_with_input(BenchmarkId::new("tus", name), &lake, |b, lake| {
            b.iter_batched(
                || &lake.catalog,
                |catalog| DomainNetBuilder::new().build(catalog),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_construction);
criterion_main!(benches);
