//! Criterion bench: approximate betweenness centrality as a function of the
//! number of sampled sources (Figure 8 — runtime side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::tus::{TusConfig, TusGenerator};
use dn_graph::approx_bc::{approximate_betweenness, ApproxBcConfig, SamplingStrategy};
use domainnet::pipeline::DomainNetBuilder;

fn bench_bc_sampling(c: &mut Criterion) {
    let lake = TusGenerator::new(TusConfig::small(5)).generate();
    let net = DomainNetBuilder::new().build(&lake.catalog);
    let graph = net.graph().clone();
    let n = graph.node_count();

    let mut group = c.benchmark_group("approx_bc_samples");
    group.sample_size(10);
    for &samples in &[n / 100, n / 20, n / 10, n / 4] {
        let samples = samples.max(5);
        group.throughput(Throughput::Elements(samples as u64));
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &s| {
            b.iter(|| {
                approximate_betweenness(
                    &graph,
                    ApproxBcConfig {
                        samples: s,
                        strategy: SamplingStrategy::Uniform,
                        seed: 1,
                    },
                    1,
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("approx_bc_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("uniform", SamplingStrategy::Uniform),
        ("degree_proportional", SamplingStrategy::DegreeProportional),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                approximate_betweenness(
                    &graph,
                    ApproxBcConfig {
                        samples: (n / 20).max(5),
                        strategy,
                        seed: 1,
                    },
                    1,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bc_sampling);
criterion_main!(benches);
