//! Criterion bench: the full DomainNet pipeline (graph construction, measure,
//! ranking) on the synthetic benchmark, plus the D4 baseline for comparison
//! (§5.1).

use criterion::{criterion_group, criterion_main, Criterion};
use d4::D4Config;
use datagen::sb::SbGenerator;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;

fn bench_pipeline(c: &mut Criterion) {
    let sb = SbGenerator::new(1).generate();

    let mut group = c.benchmark_group("pipeline_sb");
    group.sample_size(10);

    group.bench_function("domainnet_exact_bc", |b| {
        b.iter(|| {
            let net = DomainNetBuilder::new().build(&sb.catalog);
            net.rank(Measure::exact_bc())
        })
    });

    group.bench_function("domainnet_approx_bc_1pct", |b| {
        b.iter(|| {
            let net = DomainNetBuilder::new().build(&sb.catalog);
            let samples = (net.graph().node_count() / 100).max(20);
            net.rank(Measure::approx_bc(samples, 1))
        })
    });

    group.bench_function("domainnet_lcc", |b| {
        b.iter(|| {
            let net = DomainNetBuilder::new().build(&sb.catalog);
            net.rank(Measure::lcc())
        })
    });

    group.bench_function("d4_baseline", |b| {
        b.iter(|| d4::discover(&sb.catalog, D4Config::default()))
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
