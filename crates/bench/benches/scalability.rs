//! Criterion bench: approximate-BC runtime versus graph size at a fixed 1 %
//! sampling rate (Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::scale::{ScaleConfig, ScaleGenerator};
use dn_graph::approx_bc::{approximate_betweenness, ApproxBcConfig, SamplingStrategy};
use dn_graph::subgraph::random_attribute_subgraph;
use domainnet::pipeline::DomainNetBuilder;

fn bench_scalability(c: &mut Criterion) {
    // A moderately sized lake; the Criterion bench demonstrates the linear
    // trend, the exp_fig9_scalability binary covers larger graphs.
    let lake = ScaleGenerator::new(ScaleConfig {
        seed: 1,
        tables: 30,
        attrs_per_table: 6,
        max_cardinality: 800,
        min_cardinality: 5,
        vocab_size: 30_000,
        popularity_skew: 0.6,
    })
    .generate();
    let net = DomainNetBuilder::new().build(&lake);
    let full = net.graph().clone();

    let mut group = c.benchmark_group("approx_bc_vs_graph_size");
    group.sample_size(10);
    for &fraction in &[0.25f64, 0.5, 1.0] {
        let graph = if fraction >= 1.0 {
            full.clone()
        } else {
            random_attribute_subgraph(&full, (full.edge_count() as f64 * fraction) as usize, 7)
        };
        let samples = ((graph.node_count() as f64) * 0.01).ceil() as usize;
        group.throughput(Throughput::Elements(graph.edge_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}edges", graph.edge_count())),
            &graph,
            |b, g| {
                b.iter(|| {
                    approximate_betweenness(
                        g,
                        ApproxBcConfig {
                            samples: samples.max(5),
                            strategy: SamplingStrategy::Uniform,
                            seed: 1,
                        },
                        2,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
