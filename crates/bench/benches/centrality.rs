//! Criterion bench: exact betweenness centrality and the two LCC variants on
//! the synthetic benchmark graph (Step 2 of the pipeline; Figures 5 and 6).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::sb::SbGenerator;
use dn_graph::bc::{betweenness_centrality, betweenness_centrality_parallel};
use dn_graph::lcc::{local_clustering_coefficients, LccMethod};
use domainnet::pipeline::DomainNetBuilder;

fn bench_centrality(c: &mut Criterion) {
    let sb = SbGenerator::new(1).generate();
    let net = DomainNetBuilder::new().build(&sb.catalog);
    let graph = net.graph().clone();

    let mut group = c.benchmark_group("centrality_sb");
    group.sample_size(10);

    group.bench_function("exact_bc_1_thread", |b| {
        b.iter(|| betweenness_centrality(&graph))
    });
    group.bench_function("exact_bc_4_threads", |b| {
        b.iter(|| betweenness_centrality_parallel(&graph, 4))
    });
    group.bench_function("lcc_value_neighbor_jaccard", |b| {
        b.iter(|| local_clustering_coefficients(&graph, LccMethod::ValueNeighborJaccard))
    });
    group.bench_function("lcc_attribute_jaccard", |b| {
        b.iter(|| local_clustering_coefficients(&graph, LccMethod::AttributeJaccard))
    });
    group.finish();
}

criterion_group!(benches, bench_centrality);
criterion_main!(benches);
