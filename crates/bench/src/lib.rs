//! # `bench` — experiment harness for the DomainNet reproduction
//!
//! One binary per table/figure of the paper's evaluation (§5). Every binary
//! prints a human-readable table to stdout and writes a JSON artifact under
//! `target/experiments/` so results can be collected into `EXPERIMENTS.md`.
//!
//! | Binary | Paper result |
//! |---|---|
//! | `exp_table1` | Table 1 — dataset statistics |
//! | `exp_running_example` | Example 3.6 — LCC/BC scores on Figure 1 |
//! | `exp_fig5_lcc_sb` | Figure 5 — top-55 by LCC on SB |
//! | `exp_fig6_bc_sb` | Figure 6 — top-55 by BC on SB |
//! | `exp_d4_comparison` | §5.1 — D4 vs DomainNet on SB |
//! | `exp_table2_injection_cardinality` | Table 2 — injected-homograph recall vs cardinality |
//! | `exp_table3_injection_meanings` | Table 3 — injected-homograph recall vs #meanings |
//! | `exp_fig7_tus_topk` | Figure 7 + §5.3 top-10 — top-k P/R/F1 on the TUS-like lake |
//! | `exp_fig8_sampling` | Figure 8 — precision & runtime vs BC sample size |
//! | `exp_fig9_scalability` | Figure 9 + §5.4 — approx-BC runtime vs graph size |
//! | `exp_fig10_d4_impact` | Figure 10 — D4 domain count vs injected homographs |
//! | `exp_incremental` | beyond the paper — incremental vs full-rebuild maintenance latency |
//! | `exp_serving` | beyond the paper — concurrent snapshot-serving throughput (N readers vs 1 writer) |
//! | `exp_cold_start` | beyond the paper — restart latency: CSV rebuild vs snapshot load vs snapshot + WAL replay |
//! | `exp_http` | beyond the paper — HTTP serving throughput through `dn-server` (M closed-loop clients vs 1 HTTP writer) |
//! | `exp_shard` | beyond the paper — shard sweep: coordinator throughput & equivalence at `--shards` 1/2/4 |
//!
//! All binaries accept `--scale <f64>` (default 1.0) to shrink or grow the
//! generated workloads, and `--seed <u64>` to change the data seed; the
//! serving experiments additionally accept `--shards <n>`. See
//! `docs/EXPERIMENTS.md` for output shapes and expected runtimes.
//!
//! The serving-stack binaries (`exp_serving`, `exp_http`, `exp_shard`)
//! additionally write committed `BENCH_*.json` baselines in the workspace
//! root via [`write_bench_report`], so perf can be tracked across PRs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Workload scale factor (1.0 = default size).
    pub scale: f64,
    /// Data-generation seed.
    pub seed: u64,
    /// Shard count for the serving experiments (`--shards`, default 1).
    ///
    /// Experiments that predate the coordinator ignore it.
    pub shards: usize,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 1.0,
            seed: 2021,
            shards: 1,
        }
    }
}

impl ExpArgs {
    /// Parse `--scale <f>`, `--seed <n>`, and `--shards <n>` from
    /// `std::env::args`.
    ///
    /// Unknown arguments are ignored so the binaries stay forgiving when run
    /// through wrappers.
    pub fn parse() -> Self {
        let mut out = ExpArgs::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse() {
                        out.scale = v;
                    }
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse() {
                        out.seed = v;
                    }
                    i += 1;
                }
                "--shards" if i + 1 < args.len() => {
                    if let Ok(v) = args[i + 1].parse::<usize>() {
                        out.shards = v.max(1);
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Scale an integer quantity, keeping it at least `min`.
    pub fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(min)
    }
}

/// Where experiment artifacts are written.
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from("target").join("experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialize an experiment report as pretty JSON under `target/experiments/`.
pub fn write_report<T: Serialize>(name: &str, report: &T) {
    let path = output_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(report) {
        Ok(json) => {
            if let Err(err) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {err}", path.display());
            } else {
                println!("\n[report written to {}]", path.display());
            }
        }
        Err(err) => eprintln!("warning: could not serialize report {name}: {err}"),
    }
}

/// Serialize a *tracked* performance baseline as `BENCH_<name>.json` in the
/// workspace root, in addition to the usual `target/experiments/` artifact.
///
/// The `BENCH_*` files are committed alongside the code so the performance
/// trajectory of the serving stack is visible in history; the
/// `target/experiments/` copy stays the machine-local scratch artifact.
pub fn write_bench_report<T: Serialize>(name: &str, report: &T) {
    write_report(name, report);
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join(format!("BENCH_{name}.json"));
    match serde_json::to_string_pretty(report) {
        Ok(mut json) => {
            json.push('\n');
            if let Err(err) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {err}", path.display());
            } else {
                println!("[baseline written to {}]", path.display());
            }
        }
        Err(err) => eprintln!("warning: could not serialize baseline {name}: {err}"),
    }
}

/// Time a closure, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Print a markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a markdown-style table header (with separator line).
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Build the TUS-like lake configuration for a given scale factor.
///
/// Scale 1.0 gives a lake that runs end-to-end (generation + approximate BC)
/// in tens of seconds on a laptop; larger scales approach the paper's setup.
pub fn tus_config(args: ExpArgs) -> datagen::tus::TusConfig {
    let mut cfg = datagen::tus::TusConfig {
        seed: args.seed,
        ..datagen::tus::TusConfig::default()
    };
    cfg.domain_count = args.scaled(cfg.domain_count, 8);
    cfg.max_domain_vocab = args.scaled(cfg.max_domain_vocab, 60);
    cfg.rows_per_source = args.scaled(cfg.rows_per_source, 60);
    cfg.shared_pool_size = args.scaled(cfg.shared_pool_size, 20);
    cfg
}

/// The number of approximate-BC samples used by default in the experiments
/// (the paper's heuristic of ≈1 % of the nodes, with a floor).
pub fn default_samples(node_count: usize) -> usize {
    ((node_count as f64) * 0.01).ceil() as usize + 50
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        let args = ExpArgs {
            scale: 0.01,
            seed: 1,
            ..ExpArgs::default()
        };
        assert_eq!(args.scaled(100, 10), 10);
        let args = ExpArgs {
            scale: 2.0,
            seed: 1,
            ..ExpArgs::default()
        };
        assert_eq!(args.scaled(100, 10), 200);
    }

    #[test]
    fn default_samples_has_floor() {
        assert!(default_samples(0) >= 50);
        assert!(default_samples(100_000) >= 1_050);
    }

    #[test]
    fn tus_config_scales_down() {
        let small = tus_config(ExpArgs {
            scale: 0.1,
            seed: 3,
            ..ExpArgs::default()
        });
        let default = tus_config(ExpArgs {
            scale: 1.0,
            seed: 3,
            ..ExpArgs::default()
        });
        assert!(small.domain_count < default.domain_count);
        assert!(small.max_domain_vocab < default.max_domain_vocab);
        assert_eq!(small.seed, 3);
    }

    #[test]
    fn timed_returns_result() {
        let (value, secs) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
