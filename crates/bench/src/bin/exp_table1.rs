//! Table 1 — dataset statistics for the four benchmark lakes.
//!
//! For each generated dataset this prints the same columns the paper reports:
//! number of tables, attributes, distinct values, homographs, the range of
//! homograph cardinalities Card(H), and the range of meanings #M.

use bench::{print_header, print_row, write_report, ExpArgs};
use datagen::inject::{inject_homographs, remove_homographs, InjectionConfig};
use datagen::sb::SbGenerator;
use datagen::scale::{ScaleConfig, ScaleGenerator};
use datagen::truth::GeneratedLake;
use datagen::tus::TusGenerator;
use lake::stats::{HomographStats, LakeStats};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct DatasetRow {
    dataset: String,
    tables: usize,
    attributes: usize,
    values: usize,
    homographs: usize,
    card_h_min: usize,
    card_h_max: usize,
    meanings_min: usize,
    meanings_max: usize,
}

fn labeled_row(name: &str, lake: &GeneratedLake) -> DatasetRow {
    let stats = LakeStats::compute(&lake.catalog);
    let homographs: Vec<(String, usize)> = lake.homographs().into_iter().collect();
    let hstats = HomographStats::compute(&lake.catalog, &homographs);
    DatasetRow {
        dataset: name.to_owned(),
        tables: stats.tables,
        attributes: stats.attributes,
        values: stats.values,
        homographs: hstats.count,
        card_h_min: hstats.min_cardinality,
        card_h_max: hstats.max_cardinality,
        meanings_min: hstats.min_meanings,
        meanings_max: hstats.max_meanings,
    }
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Table 1: dataset statistics (scale {:.2}) ==\n",
        args.scale
    );

    let mut rows = Vec::new();

    let sb = SbGenerator::new(args.seed).generate();
    rows.push(labeled_row("SB", &sb));

    let tus = TusGenerator::new(bench::tus_config(args)).generate();
    rows.push(labeled_row("TUS-like", &tus));

    let clean = remove_homographs(&tus);
    let tus_i = inject_homographs(
        &clean,
        InjectionConfig {
            count: 50,
            meanings: 2,
            min_attr_cardinality: 0,
            seed: args.seed,
        },
    )
    .map(|r| r.lake)
    .unwrap_or(clean);
    rows.push(labeled_row("TUS-I (50 injected)", &tus_i));

    let scale_lake = ScaleGenerator::new(
        ScaleConfig {
            seed: args.seed,
            ..ScaleConfig::default()
        }
        .scaled(args.scale),
    )
    .generate();
    let scale_stats = LakeStats::compute(&scale_lake);
    rows.push(DatasetRow {
        dataset: "SCALE (NYC-EDU stand-in)".to_owned(),
        tables: scale_stats.tables,
        attributes: scale_stats.attributes,
        values: scale_stats.values,
        homographs: 0,
        card_h_min: 0,
        card_h_max: 0,
        meanings_min: 0,
        meanings_max: 0,
    });

    print_header(&[
        "Dataset", "#Tables", "#Attr", "#Val", "#Hom", "Card(H)", "#M",
    ]);
    for r in &rows {
        print_row(&[
            r.dataset.clone(),
            r.tables.to_string(),
            r.attributes.to_string(),
            r.values.to_string(),
            if r.homographs == 0 {
                "N/A".to_owned()
            } else {
                r.homographs.to_string()
            },
            if r.homographs == 0 {
                "N/A".to_owned()
            } else {
                format!("{}-{}", r.card_h_min, r.card_h_max)
            },
            if r.homographs == 0 {
                "N/A".to_owned()
            } else {
                format!("{}-{}", r.meanings_min, r.meanings_max)
            },
        ]);
    }

    println!("\nPaper (Table 1): SB 13 tables / 39 attr / 17,633 val / 55 hom;");
    println!("TUS 1,327 / 9,859 / 190,399 / 26,035; TUS-I 1,253 / 5,020 / 163,860;");
    println!("NYC-EDU 201 / 3,496 / 1,469,547.");

    write_report("table1", &rows);
}
