//! Cold-start latency: CSV rebuild vs. snapshot load vs. snapshot + WAL
//! replay.
//!
//! This experiment goes beyond the paper: DomainNet evaluates a resident
//! pipeline, but a serving deployment restarts — deploys, crashes, host
//! moves — and before `dn-store` every restart re-parsed the lake's CSVs
//! and recomputed LCC/BC from scratch. We measure, on the SB and TUS
//! workloads, the three ways a serving engine can come up:
//!
//! * **cold** — parse the CSV directory (`lake::loader::load_dir`), adopt
//!   it as a `MutableLake`, build the bipartite graph, and run a cold
//!   scoring + ranking pass for every served measure;
//! * **snapshot** — `dn_store::Store::recover` over a directory holding
//!   one checkpoint and an empty WAL: decode + validate the lake, the CSR
//!   graph, and the net's memoized rankings; no scoring happens;
//! * **snapshot + WAL** — the same, plus replaying a stream of mutation
//!   batches logged after the checkpoint through the incremental path
//!   (the worst realistic case: a crash shortly before the next
//!   checkpoint).
//!
//! The headline number is the SB snapshot speedup, which the durability
//! subsystem must win by ≥ 10×.

use bench::{default_samples, print_header, print_row, timed, tus_config, write_report, ExpArgs};
use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use datagen::tus::TusGenerator;
use dn_graph::approx_bc::{ApproxBcConfig, SamplingStrategy};
use dn_store::Store;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use lake::catalog::LakeCatalog;
use lake::delta::MutableLake;
use lake::loader::{load_dir, save_dir, LoadOptions};
use serde::Serialize;
use std::path::PathBuf;

#[derive(Debug, Serialize)]
struct ColdStartPoint {
    workload: String,
    tables: usize,
    values: usize,
    edges: usize,
    wal_batches: usize,
    cold_ms: f64,
    snapshot_ms: f64,
    replay_ms: f64,
    snapshot_bytes: u64,
    wal_bytes: u64,
    snapshot_speedup: f64,
    replay_speedup: f64,
}

#[derive(Debug, Serialize)]
struct ColdStartReport {
    seed: u64,
    scale: f64,
    points: Vec<ColdStartPoint>,
    sb_snapshot_speedup: f64,
    target_speedup: f64,
    pass: bool,
}

/// Time `f`, re-running it (up to `max_runs` times) while individual runs
/// stay under `rerun_below` seconds, and keep the fastest. On a shared or
/// throttled box, scheduler noise only ever *inflates* small timings, so
/// the minimum is the honest steady-state estimate; long phases run once
/// (their relative noise is small and re-running them is wasteful).
fn timed_min<T>(max_runs: usize, rerun_below: f64, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = timed(&mut f);
    let mut runs = 1;
    while runs < max_runs && best < rerun_below {
        let (next, secs) = timed(&mut f);
        if secs < best {
            best = secs;
            out = next;
        }
        runs += 1;
    }
    (out, best)
}

fn work_dir(workload: &str) -> PathBuf {
    let dir = bench::output_dir().join("exp_cold_start").join(workload);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create experiment work dir");
    dir
}

fn measures_for(node_count: usize, seed: u64) -> Vec<Measure> {
    vec![
        Measure::lcc(),
        Measure::ApproxBc(ApproxBcConfig {
            samples: default_samples(node_count),
            strategy: SamplingStrategy::Uniform,
            seed,
        }),
    ]
}

fn run_workload(workload: &str, catalog: &LakeCatalog, args: ExpArgs) -> ColdStartPoint {
    let dir = work_dir(workload);
    let csv_dir = dir.join("csv");
    save_dir(catalog, &csv_dir).expect("write workload CSVs");

    // The reference engine whose state gets checkpointed.
    let mut lake = MutableLake::from_catalog(catalog);
    let mut net = DomainNetBuilder::new().build(&lake);
    let measures = measures_for(net.graph().node_count(), args.seed);
    net.warm_rankings(&measures);
    let (tables, values, edges) = (
        lake.live_table_count(),
        lake.interner().len(),
        net.edge_count(),
    );

    // Cold path: CSV parse + catalog adoption + graph build + cold scores.
    let (_, cold_secs) = timed_min(3, 2.0, || {
        let parsed = load_dir(&csv_dir, LoadOptions::default()).expect("reload CSVs");
        let cold_lake = MutableLake::from_catalog(&parsed);
        let cold_net = DomainNetBuilder::new().build(&cold_lake);
        cold_net.warm_rankings(&measures);
        cold_net.edge_count()
    });

    // Snapshot path: one checkpoint, empty WAL.
    let store_dir = dir.join("store");
    let mut store = Store::create(&store_dir).expect("create store");
    let snapshot_bytes = store
        .checkpoint(&lake, &net, 0, &measures)
        .expect("write checkpoint");
    drop(store);
    let (recovered, snapshot_secs) =
        timed_min(3, 2.0, || Store::recover(&store_dir).expect("recover"));
    assert_eq!(recovered.1.replayed_batches, 0);
    drop(recovered);

    // Snapshot + WAL path: log mutation batches after the checkpoint,
    // "crash", and recover through snapshot + incremental replay.
    let wal_batches = args.scaled(5, 3);
    let (mut store, _) = Store::recover(&store_dir).expect("reopen store");
    let mut stream = MutationStream::new(MutationConfig {
        seed: args.seed,
        ..MutationConfig::default()
    });
    for _ in 0..wal_batches {
        let delta = stream.next_delta(&lake);
        let batch = vec![delta];
        store.append_batch(0, &batch).expect("append batch");
        let effects = lake.apply_batch(batch.iter()).expect("apply batch");
        net.apply_delta(&lake, &effects).expect("incremental patch");
        net.warm_rankings(&measures);
    }
    let wal_bytes = store.wal_record_bytes();
    drop(store);
    let (recovered, replay_secs) = timed_min(3, 2.0, || {
        Store::recover(&store_dir).expect("recover + replay")
    });
    assert_eq!(recovered.1.replayed_batches, wal_batches);
    // Recovery must land on the live engine's exact state.
    assert_eq!(recovered.1.net.export_state(), net.export_state());
    drop(recovered);

    let cold_ms = cold_secs * 1e3;
    let snapshot_ms = snapshot_secs * 1e3;
    let replay_ms = replay_secs * 1e3;
    ColdStartPoint {
        workload: workload.to_owned(),
        tables,
        values,
        edges,
        wal_batches,
        cold_ms,
        snapshot_ms,
        replay_ms,
        snapshot_bytes,
        wal_bytes,
        snapshot_speedup: cold_ms / snapshot_ms.max(1e-9),
        replay_speedup: cold_ms / replay_ms.max(1e-9),
    }
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Cold start: CSV rebuild vs snapshot vs snapshot + WAL replay ==\n");

    let sb = SbGenerator::with_config(SbConfig {
        seed: args.seed,
        rows_per_table: args.scaled(1000, 60),
    })
    .generate();
    let tus = TusGenerator::new(tus_config(args)).generate();

    let runs: Vec<(&str, &LakeCatalog)> = vec![("SB", &sb.catalog), ("TUS", &tus.catalog)];
    let mut points = Vec::new();
    print_header(&[
        "Workload",
        "Tables",
        "Values",
        "Edges",
        "Cold (ms)",
        "Snapshot (ms)",
        "Snap+WAL (ms)",
        "Snapshot size",
        "Speedup (snap)",
        "Speedup (snap+WAL)",
    ]);
    for (workload, catalog) in runs {
        let point = run_workload(workload, catalog, args);
        print_row(&[
            point.workload.clone(),
            point.tables.to_string(),
            point.values.to_string(),
            point.edges.to_string(),
            format!("{:.1}", point.cold_ms),
            format!("{:.1}", point.snapshot_ms),
            format!("{:.1}", point.replay_ms),
            format!("{} B", point.snapshot_bytes),
            format!("{:.1}x", point.snapshot_speedup),
            format!("{:.1}x", point.replay_speedup),
        ]);
        points.push(point);
    }

    let target = 10.0;
    let headline = points
        .iter()
        .find(|p| p.workload == "SB")
        .map(|p| p.snapshot_speedup)
        .unwrap_or(0.0);
    let pass = headline >= target;
    println!(
        "\nHeadline: SB snapshot load is {headline:.1}x faster than the CSV rebuild \
         ({})",
        if pass {
            "PASS, >= 10x required"
        } else {
            "FAIL, >= 10x required"
        }
    );
    println!(
        "Recovered state was verified equal (export_state) to the live engine \
         on every snapshot+WAL run."
    );

    let report = ColdStartReport {
        seed: args.seed,
        scale: args.scale,
        points,
        sb_snapshot_speedup: headline,
        target_speedup: target,
        pass,
    };
    write_report("cold_start", &report);
}
