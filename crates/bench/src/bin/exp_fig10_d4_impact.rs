//! Figure 10 — impact of injected homographs on the D4 domain-discovery
//! baseline.
//!
//! Paper: on TUS-I, D4 finds 134 domains when no homographs are present; as
//! 50–200 homographs with 2/4/6 meanings are injected the number of
//! discovered domains grows (and with 5 000 injections it explodes to 371,
//! with up to 22 domains assigned to a single column). The trend — more
//! homographs ⇒ more, messier domains — is what motivates running homograph
//! detection *before* domain discovery.

use bench::{print_header, print_row, write_report, ExpArgs};
use d4::D4Config;
use datagen::inject::{inject_homographs, remove_homographs, InjectionConfig};
use datagen::tus::TusGenerator;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig10Point {
    injected: usize,
    meanings: usize,
    domains: usize,
    max_domains_per_column: usize,
    avg_domains_per_column: f64,
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Figure 10: impact of injected homographs on D4 ==\n");

    let generated = TusGenerator::new(bench::tus_config(args)).generate();
    let clean = remove_homographs(&generated);

    let base = d4::discover(&clean.catalog, D4Config::default());
    println!(
        "Baseline (no homographs): {} domains, max {} / avg {:.3} domains per column\n",
        base.domain_count(),
        base.max_domains_per_column(),
        base.avg_domains_per_column()
    );

    let injection_counts = [50usize, 100, 150, 200];
    let meanings_list = [2usize, 4, 6];
    let mut points = vec![Fig10Point {
        injected: 0,
        meanings: 0,
        domains: base.domain_count(),
        max_domains_per_column: base.max_domains_per_column(),
        avg_domains_per_column: base.avg_domains_per_column(),
    }];

    print_header(&[
        "# injected",
        "# meanings",
        "# domains",
        "max dom/col",
        "avg dom/col",
    ]);
    print_row(&[
        "0".to_owned(),
        "-".to_owned(),
        base.domain_count().to_string(),
        base.max_domains_per_column().to_string(),
        format!("{:.3}", base.avg_domains_per_column()),
    ]);

    for &meanings in &meanings_list {
        for &count in &injection_counts {
            let injected = match inject_homographs(
                &clean,
                InjectionConfig {
                    count,
                    meanings,
                    min_attr_cardinality: 0,
                    seed: args.seed + (count * meanings) as u64,
                },
            ) {
                Some(r) => r,
                None => {
                    println!("  ({count} x {meanings}: not enough values to inject, skipped)");
                    continue;
                }
            };
            let out = d4::discover(&injected.lake.catalog, D4Config::default());
            print_row(&[
                count.to_string(),
                meanings.to_string(),
                out.domain_count().to_string(),
                out.max_domains_per_column().to_string(),
                format!("{:.3}", out.avg_domains_per_column()),
            ]);
            points.push(Fig10Point {
                injected: count,
                meanings,
                domains: out.domain_count(),
                max_domains_per_column: out.max_domains_per_column(),
                avg_domains_per_column: out.avg_domains_per_column(),
            });
        }
    }

    println!("\nPaper (Figure 10): 134 domains with no homographs, rising toward ~160 as");
    println!("200 homographs with 6 meanings are injected; 371 domains at 5,000 injections.");
    println!("Expected shape: domain count does not decrease and generally grows with the");
    println!("number and meanings of injected homographs.");

    write_report("fig10_d4_impact", &points);
}
