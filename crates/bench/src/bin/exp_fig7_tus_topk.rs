//! Figure 7 and §5.3 — top-k precision/recall/F1 on the TUS-like lake, plus
//! the top-10 listing.
//!
//! Paper: precision 0.89 at k = 200, precision/recall/F1 = 0.622 at
//! k = 26,035 (the number of true homographs), best F1 = 0.655 slightly past
//! that point; the top-10 BC values are all homographs (null markers, small
//! numbers, multi-context strings).

use bench::{default_samples, print_header, print_row, timed, write_report, ExpArgs};
use datagen::tus::TusGenerator;
use domainnet::eval::TopKCurve;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig7Report {
    candidates: usize,
    truth_size: usize,
    bc_samples: usize,
    bc_seconds: f64,
    precision_at_200: f64,
    precision_at_truth: f64,
    recall_at_truth: f64,
    f1_at_truth: f64,
    best_f1_k: usize,
    best_f1: f64,
    top10: Vec<(String, f64, bool)>,
    curve_sample: Vec<(usize, f64, f64, f64)>,
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Figure 7: top-k evaluation on the TUS-like lake ==\n");

    let generated = TusGenerator::new(bench::tus_config(args)).generate();
    let truth = generated.homograph_set();
    println!(
        "Lake: {} tables, {} attributes, {} values, {} ground-truth homographs",
        generated.catalog.table_count(),
        generated.catalog.attribute_count(),
        generated.catalog.value_count(),
        truth.len()
    );

    let (net, build_secs) = timed(|| DomainNetBuilder::new().build(&generated.catalog));
    println!(
        "Graph: {} candidates + {} attributes, {} edges (built in {:.2}s)",
        net.candidate_count(),
        net.attribute_count(),
        net.edge_count(),
        build_secs
    );

    let samples = default_samples(net.graph().node_count());
    let (ranked, bc_secs) = timed(|| net.rank(Measure::approx_bc(samples, args.seed)));
    println!("Approximate BC with {samples} samples computed in {bc_secs:.2}s\n");

    let curve = TopKCurve::sampled(&ranked, &truth, (ranked.len() / 400).max(1));
    let at_200 = curve.at_k(200).map(|p| p.precision).unwrap_or(0.0);
    let at_truth = curve
        .at_k(truth.len())
        .unwrap_or(curve.points[curve.points.len() - 1]);
    let best = curve.best_f1().expect("non-empty curve");

    println!("Top-10 values by approximate BC:");
    print_header(&["Rank", "Value", "BC", "Homograph?"]);
    for (i, s) in ranked.iter().take(10).enumerate() {
        print_row(&[
            (i + 1).to_string(),
            s.value.clone(),
            format!("{:.5}", s.score),
            truth.contains(&s.value).to_string(),
        ]);
    }

    println!("\nSummary:");
    print_header(&["Metric", "Value"]);
    print_row(&["precision@200".to_owned(), format!("{at_200:.3}")]);
    print_row(&[
        format!("precision@|H|={}", truth.len()),
        format!("{:.3}", at_truth.precision),
    ]);
    print_row(&[
        format!("recall@|H|={}", truth.len()),
        format!("{:.3}", at_truth.recall),
    ]);
    print_row(&[
        format!("F1@|H|={}", truth.len()),
        format!("{:.3}", at_truth.f1),
    ]);
    print_row(&[
        "best F1".to_owned(),
        format!("{:.3} (k={})", best.f1, best.k),
    ]);

    println!("\nPaper (Figure 7): precision@200 = 0.89; P/R/F1 = 0.622 at k = 26,035;");
    println!("best F1 = 0.655 at k = 29,633; all top-10 values are homographs.");

    let report = Fig7Report {
        candidates: net.candidate_count(),
        truth_size: truth.len(),
        bc_samples: samples,
        bc_seconds: bc_secs,
        precision_at_200: at_200,
        precision_at_truth: at_truth.precision,
        recall_at_truth: at_truth.recall,
        f1_at_truth: at_truth.f1,
        best_f1_k: best.k,
        best_f1: best.f1,
        top10: ranked
            .iter()
            .take(10)
            .map(|s| (s.value.clone(), s.score, truth.contains(&s.value)))
            .collect(),
        curve_sample: curve
            .points
            .iter()
            .step_by((curve.points.len() / 40).max(1))
            .map(|p| (p.k, p.precision, p.recall, p.f1))
            .collect(),
    };
    write_report("fig7_tus_topk", &report);
}
