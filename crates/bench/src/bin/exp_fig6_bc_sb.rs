//! Figure 6 — the top-55 data values with the highest betweenness centrality
//! on the synthetic benchmark.
//!
//! The paper's finding: 38 of the top-55 BC values are homographs, and the
//! misses are the country-code/state-abbreviation homographs that live in the
//! two small tables (their BC cannot grow large because few shortest paths
//! exist in such small domains).

use bench::{print_header, print_row, write_report, ExpArgs};
use datagen::sb::SbGenerator;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::{precision_recall_at_k, Measure};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig6Report {
    k: usize,
    homographs_in_top_k: usize,
    precision: f64,
    recall: f64,
    f1: f64,
    missed_homographs: Vec<String>,
    top_values: Vec<(String, f64, bool)>,
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Figure 6: top-55 highest BC values on SB ==\n");

    let generated = SbGenerator::new(args.seed).generate();
    let truth = generated.homograph_set();
    let k = truth.len().clamp(1, 55);

    let net = DomainNetBuilder::new().build(&generated.catalog);
    let ranked = net.rank(Measure::exact_bc());
    let eval = precision_recall_at_k(&ranked, &truth, k);

    print_header(&["Rank", "Value", "BC", "Homograph?"]);
    for (i, s) in ranked.iter().take(k).enumerate() {
        print_row(&[
            (i + 1).to_string(),
            s.value.clone(),
            format!("{:.4}", s.score),
            truth.contains(&s.value).to_string(),
        ]);
    }

    // Which ground-truth homographs were missed, and are they the small-table
    // abbreviation family as in the paper?
    let retrieved: std::collections::BTreeSet<&str> =
        ranked.iter().take(k).map(|s| s.value.as_str()).collect();
    let missed: Vec<String> = truth
        .iter()
        .filter(|h| !retrieved.contains(h.as_str()))
        .cloned()
        .collect();

    println!(
        "\nTop-{k} by BC: {} homographs -> precision {:.3}, recall {:.3}, F1 {:.3}",
        eval.hits, eval.precision, eval.recall, eval.f1
    );
    println!(
        "Missed homographs ({}): {}",
        missed.len(),
        missed
            .iter()
            .take(20)
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("\nPaper (Figure 6): 38 of the top-55 are homographs; the misses are the");
    println!("country/state abbreviation homographs from the two small tables.");

    let report = Fig6Report {
        k,
        homographs_in_top_k: eval.hits,
        precision: eval.precision,
        recall: eval.recall,
        f1: eval.f1,
        missed_homographs: missed,
        top_values: ranked
            .iter()
            .take(k)
            .map(|s| (s.value.clone(), s.score, truth.contains(&s.value)))
            .collect(),
    };
    write_report("fig6_bc_sb", &report);
}
