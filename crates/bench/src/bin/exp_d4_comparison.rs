//! §5.1 — comparing DomainNet against the D4-based homograph detector on the
//! synthetic benchmark.
//!
//! The paper reports that using D4 (any value placed in more than one
//! discovered domain is a homograph) reaches precision = recall = F1 = 38 %
//! at k = 55, while DomainNet's BC ranking reaches 69 %. What must reproduce
//! is the gap: the domain-discovery detour loses to the direct centrality
//! ranking, chiefly because D4 only discovers domains for a subset of the
//! columns.

use std::collections::BTreeSet;

use bench::{print_header, print_row, write_report, ExpArgs};
use d4::D4Config;
use datagen::sb::SbGenerator;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::{precision_recall_at_k, Measure};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct MethodResult {
    method: String,
    returned: usize,
    hits: usize,
    precision: f64,
    recall: f64,
    f1: f64,
}

fn main() {
    let args = ExpArgs::parse();
    println!("== §5.1: D4 baseline vs DomainNet (BC) on SB ==\n");

    let generated = SbGenerator::new(args.seed).generate();
    let truth = generated.homograph_set();
    let k = truth.len();
    println!("Ground-truth homographs: {k}\n");

    // --- DomainNet with exact BC -------------------------------------------
    let net = DomainNetBuilder::new().build(&generated.catalog);
    let ranked = net.rank(Measure::exact_bc());
    let dn_eval = precision_recall_at_k(&ranked, &truth, k);

    // --- DomainNet with LCC (for reference) ---------------------------------
    let lcc_eval = precision_recall_at_k(&net.rank(Measure::lcc()), &truth, k);

    // --- D4 baseline ---------------------------------------------------------
    let d4_out = d4::discover(&generated.catalog, D4Config::default());
    let d4_homographs: BTreeSet<String> = d4_out.homographs();
    let d4_hits = d4_homographs.intersection(&truth).count();
    let d4_precision = if d4_homographs.is_empty() {
        0.0
    } else {
        d4_hits as f64 / d4_homographs.len() as f64
    };
    let d4_recall = if truth.is_empty() {
        0.0
    } else {
        d4_hits as f64 / truth.len() as f64
    };
    let d4_f1 = if d4_precision + d4_recall == 0.0 {
        0.0
    } else {
        2.0 * d4_precision * d4_recall / (d4_precision + d4_recall)
    };

    println!(
        "D4 discovered {} domains covering {}/{} string columns (max {} domains/column)\n",
        d4_out.domain_count(),
        d4_out.covered_columns(),
        d4_out.string_columns,
        d4_out.max_domains_per_column()
    );

    let results = vec![
        MethodResult {
            method: "DomainNet (exact BC)".to_owned(),
            returned: k,
            hits: dn_eval.hits,
            precision: dn_eval.precision,
            recall: dn_eval.recall,
            f1: dn_eval.f1,
        },
        MethodResult {
            method: "DomainNet (LCC)".to_owned(),
            returned: k,
            hits: lcc_eval.hits,
            precision: lcc_eval.precision,
            recall: lcc_eval.recall,
            f1: lcc_eval.f1,
        },
        MethodResult {
            method: "D4 baseline".to_owned(),
            returned: d4_homographs.len(),
            hits: d4_hits,
            precision: d4_precision,
            recall: d4_recall,
            f1: d4_f1,
        },
    ];

    print_header(&["Method", "Returned", "Hits", "Precision", "Recall", "F1"]);
    for r in &results {
        print_row(&[
            r.method.clone(),
            r.returned.to_string(),
            r.hits.to_string(),
            format!("{:.3}", r.precision),
            format!("{:.3}", r.recall),
            format!("{:.3}", r.f1),
        ]);
    }

    println!("\nPaper (§5.1): D4-based detection 38% P/R/F1 vs DomainNet 69% at k = 55.");
    println!("Expected shape: DomainNet (BC) clearly above both LCC and the D4 baseline.");

    write_report("d4_comparison", &results);
}
