//! Drop-folder ingest replay: CDC cost & fidelity under faults.
//!
//! Replays a seeded homograph-drift file-generation sequence
//! (`datagen::DriftStream`) through the `dn-ingest` watcher into a live
//! sharded engine, the way `dn-serve --ingest-dir` runs it in production:
//! each generation rewrites the drop-folder (value substitutions, drifting
//! homograph tokens, table arrivals/retirements), the ingester fingerprints
//! the folder, diffs changed files into minimal `LakeDelta` batches, and
//! commits them through the coordinator with its exactly-once journal.
//!
//! Mid-sequence the replay injects the two faults the journal exists for:
//! one **kill/restart** (the ingester is dropped after a batch was applied
//! but before its commit reached the journal, then rebuilt from the
//! journal) and one **redelivered batch** (the sink applies a batch but
//! reports a transient failure, so the same intent is delivered twice).
//!
//! The acceptance gate is end-state equivalence: after the full replay the
//! served rankings of every golden measure must match a cold build of the
//! final folder contents to 1e-9 per value, with identical value sets.
//! Timings (ingest wall-clock vs cold-build wall-clock, rows diffed,
//! batches shipped) are written to `BENCH_ingest.json` in the workspace
//! root so the cost of the CDC path is tracked per PR.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use bench::{print_header, print_row, timed, write_bench_report, ExpArgs};
use datagen::{DriftConfig, DriftStream};
use dn_ingest::{CoordinatorSink, DeltaSink, IngestConfig, IngestStats, Ingester, SinkError};
use dn_service::{serve_sharded, Coordinator, CoordinatorHandle, ServiceConfig};
use domainnet::Measure;
use lake::delta::MutableLake;
use lake::LakeDelta;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct IngestReport {
    seed: u64,
    scale: f64,
    shards: usize,
    generations: usize,
    tables: usize,
    rows_per_table: usize,
    kill_restarts: u64,
    redelivered_batches: u64,
    files_seen: u64,
    batches_applied: u64,
    rows_diffed: u64,
    retries: u64,
    ingest_s: f64,
    cold_build_s: f64,
    ranked_values: usize,
    max_abs_diff: f64,
    pass: bool,
}

fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp")
        .join(format!("dn_exp_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        measures: vec![Measure::lcc(), Measure::exact_bc()],
        cache_capacity: 64,
        prune_single_attribute_values: true,
        threads,
    }
}

fn ingest_config(dir: &Path) -> IngestConfig {
    let mut config = IngestConfig::new(dir);
    config.journal_path = dir.with_extension("journal");
    config.poll_interval = std::time::Duration::from_millis(1);
    config.max_attempts = 1;
    config
}

/// Applies through the inner sink, then reports the chosen delivery as a
/// transient failure — the applied-but-unacknowledged window the journal's
/// exactly-once protocol has to absorb.
struct CrashAfterApply<S> {
    inner: S,
    crash_on: Option<u64>,
}

impl<S: DeltaSink> DeltaSink for CrashAfterApply<S> {
    fn deliver(&mut self, seq: u64, deltas: &[LakeDelta]) -> Result<(), SinkError> {
        self.inner.deliver(seq, deltas)?;
        if self.crash_on == Some(seq) {
            self.crash_on = None;
            return Err(SinkError::Transient("injected fault after apply".into()));
        }
        Ok(())
    }

    fn transient_means_unapplied(&self) -> bool {
        false
    }
}

fn drain<S: DeltaSink>(ingester: &mut Ingester<S>) {
    for _ in 0..50 {
        let report = ingester.poll_once().expect("poll");
        if report.caught_up && !ingester.has_pending() {
            return;
        }
    }
    panic!("ingester did not catch up within 50 polls");
}

/// Poll until the injected fault surfaces as a transient error.
fn poll_until_fault<S: DeltaSink>(ingester: &mut Ingester<S>) {
    loop {
        match ingester.poll_once() {
            Ok(report) => assert!(!report.caught_up, "injected fault never fired"),
            Err(e) => {
                assert!(e.is_transient(), "injected fault is transient: {e}");
                return;
            }
        }
    }
}

fn ranking(handle: &CoordinatorHandle, measure: Measure) -> BTreeMap<String, f64> {
    handle
        .reader()
        .top_k(measure, usize::MAX)
        .expect("served measure")
        .iter()
        .map(|s| (s.value.clone(), s.score))
        .collect()
}

fn main() {
    let args = ExpArgs::parse();
    let generations = args.scaled(12, 6);
    let tables = args.scaled(6, 3);
    let rows_per_table = args.scaled(48, 16);
    let dir = scratch_dir();
    let measures = [Measure::lcc(), Measure::exact_bc()];

    println!(
        "# exp_ingest: {generations} drift generations over {tables} tables x \
{rows_per_table} rows (seed {}, shards {})\n",
        args.seed, args.shards
    );

    let (handle, coordinator) = serve_sharded(MutableLake::new(), service_config(1), args.shards);
    let coordinator: Arc<Mutex<Coordinator>> = Arc::new(Mutex::new(coordinator));
    let stats = Arc::new(IngestStats::default());
    let mut stream = DriftStream::new(DriftConfig {
        seed: args.seed,
        tables,
        rows_per_table,
        drifters: 3,
        churn_per_generation: 2,
    });

    // Fault points: a kill/restart a third of the way in, one redelivered
    // batch two thirds of the way in.
    let kill_at = generations / 3;
    let redeliver_at = (2 * generations) / 3;
    let mut kill_restarts = 0u64;
    let mut redelivered_batches = 0u64;

    let (_, ingest_s) = timed(|| {
        let mut ingester = Ingester::new(
            ingest_config(&dir),
            CrashAfterApply {
                inner: CoordinatorSink::new(Arc::clone(&coordinator)),
                crash_on: None,
            },
            Arc::clone(&stats),
        )
        .expect("ingester starts");
        for generation in 0..generations {
            stream
                .write_next_generation(&dir)
                .expect("write generation");
            if generation == kill_at {
                // Arm the fault, let the batch apply, then "kill -9" the
                // ingester with the pending intent journaled and rebuild
                // it from the journal.
                ingester.sink_mut().crash_on = Some(ingester.last_seq() + 1);
                poll_until_fault(&mut ingester);
                assert!(ingester.has_pending(), "intent survives the kill");
                drop(ingester);
                kill_restarts += 1;
                ingester = Ingester::new(
                    ingest_config(&dir),
                    CrashAfterApply {
                        inner: CoordinatorSink::new(Arc::clone(&coordinator)),
                        crash_on: None,
                    },
                    Arc::clone(&stats),
                )
                .expect("ingester restarts");
            } else if generation == redeliver_at {
                // Same fault without the kill: the next poll redelivers
                // the pending batch through the same ingester.
                ingester.sink_mut().crash_on = Some(ingester.last_seq() + 1);
                poll_until_fault(&mut ingester);
                redelivered_batches += 1;
            }
            drain(&mut ingester);
        }
    });

    // Cold build: the final folder contents loaded from scratch.
    let (cold_handle, cold_build_s) = {
        let ((cold_handle, _cold_coordinator), cold_build_s) = timed(|| {
            let catalog = lake::loader::load_dir(
                &dir,
                lake::loader::LoadOptions {
                    strict: true,
                    ..lake::loader::LoadOptions::default()
                },
            )
            .expect("cold load");
            serve_sharded(
                MutableLake::from_catalog(&catalog),
                service_config(1),
                args.shards,
            )
        });
        (cold_handle, cold_build_s)
    };

    // Gate: every golden measure agrees with the cold build to 1e-9.
    let mut pass = true;
    let mut max_abs_diff = 0.0f64;
    let mut ranked_values = 0usize;
    for measure in measures {
        let warm = ranking(&handle, measure);
        let cold = ranking(&cold_handle, measure);
        ranked_values = ranked_values.max(warm.len());
        if warm.len() != cold.len() || warm.keys().ne(cold.keys()) {
            eprintln!(
                "[{measure:?}] ranked value sets differ: warm {} vs cold {}",
                warm.len(),
                cold.len()
            );
            pass = false;
            continue;
        }
        for (value, score) in &warm {
            let diff = (score - cold[value]).abs();
            max_abs_diff = max_abs_diff.max(diff);
            if diff > 1e-9 {
                eprintln!(
                    "[{measure:?}] {value}: warm {score} vs cold {}",
                    cold[value]
                );
                pass = false;
            }
        }
    }

    let snapshot = stats.snapshot();
    print_header(&[
        "generations",
        "batches",
        "rows_diffed",
        "retries",
        "kills",
        "redelivered",
        "ingest_s",
        "cold_s",
        "max_abs_diff",
        "pass",
    ]);
    print_row(&[
        generations.to_string(),
        snapshot.batches_applied.to_string(),
        snapshot.rows_diffed.to_string(),
        snapshot.retries.to_string(),
        kill_restarts.to_string(),
        redelivered_batches.to_string(),
        format!("{ingest_s:.3}"),
        format!("{cold_build_s:.3}"),
        format!("{max_abs_diff:.2e}"),
        pass.to_string(),
    ]);

    let report = IngestReport {
        seed: args.seed,
        scale: args.scale,
        shards: args.shards,
        generations,
        tables,
        rows_per_table,
        kill_restarts,
        redelivered_batches,
        files_seen: snapshot.files_seen,
        batches_applied: snapshot.batches_applied,
        rows_diffed: snapshot.rows_diffed,
        retries: snapshot.retries,
        ingest_s,
        cold_build_s,
        ranked_values,
        max_abs_diff,
        pass,
    };
    write_bench_report("ingest", &report);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(dir.with_extension("journal"));
    if !pass {
        eprintln!("\nexp_ingest: FAILED the 1e-9 end-state equivalence gate");
        std::process::exit(1);
    }
    println!("\nexp_ingest: end state matches the cold build (<= 1e-9)");
}
