//! Table 2 — percentage of the 50 injected homographs appearing in the
//! top-50 BC results, as a function of the cardinality of the attributes the
//! replaced values were drawn from.
//!
//! Paper: 85 % with no cardinality constraint rising to ~97.5 % when the
//! replaced values come from attributes with ≥ 500 distinct values (numbers
//! averaged over 4 runs). The reproduced lake is smaller, so the thresholds
//! are scaled relative to the largest attribute, but the monotone trend —
//! larger-cardinality homographs are easier to find — must hold.

use std::collections::BTreeSet;

use bench::{default_samples, print_header, print_row, write_report, ExpArgs};
use datagen::inject::{inject_homographs, remove_homographs, InjectionConfig};
use datagen::tus::TusGenerator;
use domainnet::eval::recall_of_expected_in_top_k;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ThresholdResult {
    min_attr_cardinality: usize,
    runs: usize,
    injected_per_run: usize,
    mean_recall_in_top_k: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let injections = 50usize;
    let runs = 4usize;
    println!("== Table 2: injected-homograph recall vs cardinality threshold ==\n");

    let generated = TusGenerator::new(bench::tus_config(args)).generate();
    let clean = remove_homographs(&generated);

    // Scale the paper's absolute thresholds (0..500) to the generated lake:
    // express them as fractions of the largest attribute cardinality.
    let max_card = clean
        .catalog
        .attribute_ids()
        .map(|a| clean.catalog.attribute_cardinality(a))
        .max()
        .unwrap_or(0);
    let thresholds: Vec<usize> = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
        .iter()
        .map(|f| ((max_card as f64) * f) as usize)
        .collect();
    println!(
        "Clean lake: {} values, {} attributes, max attribute cardinality {max_card}\n",
        clean.catalog.value_count(),
        clean.catalog.attribute_count()
    );

    let mut results = Vec::new();
    for &threshold in &thresholds {
        let mut recalls = Vec::new();
        for run in 0..runs {
            let injected = match inject_homographs(
                &clean,
                InjectionConfig {
                    count: injections,
                    meanings: 2,
                    min_attr_cardinality: threshold,
                    seed: args.seed + run as u64 * 101,
                },
            ) {
                Some(r) => r,
                None => {
                    println!("  (threshold {threshold}: not enough eligible attributes, skipped)");
                    continue;
                }
            };
            let net = DomainNetBuilder::new().build(&injected.lake.catalog);
            let samples = default_samples(net.graph().node_count());
            let ranked = net.rank(Measure::approx_bc(samples, args.seed + run as u64));
            let expected: BTreeSet<String> = injected.injected.iter().cloned().collect();
            recalls.push(recall_of_expected_in_top_k(&ranked, &expected, injections));
        }
        if recalls.is_empty() {
            continue;
        }
        let mean = recalls.iter().sum::<f64>() / recalls.len() as f64;
        results.push(ThresholdResult {
            min_attr_cardinality: threshold,
            runs: recalls.len(),
            injected_per_run: injections,
            mean_recall_in_top_k: mean,
        });
    }

    print_header(&["Min attr cardinality", "Runs", "% injected in top-50"]);
    for r in &results {
        print_row(&[
            format!(">= {}", r.min_attr_cardinality),
            r.runs.to_string(),
            format!("{:.1}%", 100.0 * r.mean_recall_in_top_k),
        ]);
    }

    println!("\nPaper (Table 2): 85% -> 93.5% -> 93.5% -> 95% -> 94.5% -> 97.5%");
    println!("as the cardinality threshold rises 0 -> 500.");
    println!("Expected shape: recall improves as the threshold increases.");

    write_report("table2_injection_cardinality", &results);
}
