//! Figure 8 — precision@|H| and runtime of approximate BC as a function of
//! the number of sampled source nodes.
//!
//! Paper: on TUS, precision stabilizes around 0.6 by ~1 000 samples (≈0.5 %
//! of the nodes, ~40 s) while exact BC takes 150 minutes for 0.631 — the
//! ranking converges long before the scores do, and runtime grows linearly in
//! the sample count.

use std::collections::BTreeSet;

use bench::{print_header, print_row, timed, write_report, ExpArgs};
use datagen::tus::TusGenerator;
use domainnet::eval::precision_recall_at_k;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SamplePoint {
    samples: usize,
    fraction_of_nodes: f64,
    precision_at_truth: f64,
    seconds: f64,
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Figure 8: precision and runtime vs approximate-BC sample size ==\n");

    let generated = TusGenerator::new(bench::tus_config(args)).generate();
    let truth: BTreeSet<String> = generated.homograph_set();
    let net = DomainNetBuilder::new().build(&generated.catalog);
    let n = net.graph().node_count();
    println!(
        "Graph: {} nodes, {} edges; {} ground-truth homographs\n",
        n,
        net.edge_count(),
        truth.len()
    );

    let fractions = [0.001, 0.0025, 0.005, 0.01, 0.02, 0.05, 0.1];
    let mut points = Vec::new();
    for &fraction in &fractions {
        let samples = ((n as f64 * fraction).ceil() as usize).clamp(10, n);
        let (ranked, seconds) = timed(|| net.rank(Measure::approx_bc(samples, args.seed)));
        let eval = precision_recall_at_k(&ranked, &truth, truth.len());
        points.push(SamplePoint {
            samples,
            fraction_of_nodes: fraction,
            precision_at_truth: eval.precision,
            seconds,
        });
    }

    print_header(&["Samples", "% of nodes", "Precision@|H|", "Time (s)"]);
    for p in &points {
        print_row(&[
            p.samples.to_string(),
            format!("{:.2}%", 100.0 * p.fraction_of_nodes),
            format!("{:.3}", p.precision_at_truth),
            format!("{:.2}", p.seconds),
        ]);
    }

    println!("\nPaper (Figure 8): precision stabilizes near the exact value by ~0.5-1% of the");
    println!("nodes sampled; runtime grows roughly linearly with the sample count.");

    write_report("fig8_sampling", &points);
}
