//! Concurrent serving throughput: N readers vs. 1 mutating writer.
//!
//! This experiment drives the `dn-service` epoch-snapshot engine the way a
//! production deployment would: one writer thread continuously applies
//! batched seeded mutations (table arrivals/removals/rewrites) and
//! publishes epochs, while N reader threads fire a mixed query load —
//! top-k rankings (LRU-cached), score/rank/percentile cards, attribute-
//! neighborhood explanations, and per-table summaries — against whatever
//! snapshot they pinned. `--shards <n>` serves the same lake through the
//! component-sharded coordinator (`--shards 1`, the default, is
//! bit-identical to the single engine). Reported per (workload, N): aggregate queries/sec,
//! p50/p99 latency, epochs published during the window, cache hit rate,
//! and throughput scaling relative to the single-reader run.
//!
//! The acceptance target is ≥ 4× aggregate read throughput at 8 readers vs
//! 1 reader on SB. That is a *parallel-hardware* target: snapshot pinning
//! is a `RwLock` clone of one `Arc` and queries then run lock-free, so
//! scaling is bounded by the machine, not the engine. The binary therefore
//! prints the detected parallelism and scales the pass threshold to
//! `min(4, max(0.9, cores/2))` so a constrained CI box judges the engine
//! by what the hardware can express.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{default_samples, print_header, print_row, tus_config, write_bench_report, ExpArgs};
use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use datagen::tus::TusGenerator;
use dn_graph::approx_bc::{ApproxBcConfig, SamplingStrategy};
use dn_service::{serve_sharded, CoordinatorReader, ServiceConfig};
use domainnet::Measure;
use lake::delta::{LakeView, MutableLake};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Serialize)]
struct ServingPoint {
    workload: String,
    shards: usize,
    readers: usize,
    duration_s: f64,
    queries: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    epochs_published: u64,
    cache_hit_rate: f64,
    scaling_vs_single: f64,
}

#[derive(Debug, Serialize)]
struct ServingReport {
    seed: u64,
    scale: f64,
    shards: usize,
    available_parallelism: usize,
    scaling_target: f64,
    points: Vec<ServingPoint>,
    sb_8_reader_scaling: f64,
    pass: bool,
}

/// One reader thread's seeded query mix against its pinned snapshots.
/// Returns per-query latencies in nanoseconds.
fn reader_loop(
    mut reader: CoordinatorReader,
    measures: Vec<Measure>,
    hot_values: Vec<String>,
    tables: Vec<String>,
    seed: u64,
    stop: Arc<AtomicBool>,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(1 << 16);
    let ks = [10usize, 20, 50];
    while !stop.load(Ordering::Relaxed) {
        reader.pin();
        // A burst of queries per pin, as a request handler would issue.
        for _ in 0..16 {
            let measure = measures[rng.gen_range(0..measures.len())];
            let dice = rng.gen_range(0..100u32);
            let start = Instant::now();
            if dice < 50 {
                let k = ks[rng.gen_range(0..ks.len())];
                let top = reader.top_k(measure, k).expect("served measure");
                assert!(top.len() <= k);
            } else if dice < 70 {
                let value = &hot_values[rng.gen_range(0..hot_values.len())];
                let _ = reader.score_card(measure, value);
            } else if dice < 85 {
                let value = &hot_values[rng.gen_range(0..hot_values.len())];
                let _ = reader.explain(value);
            } else {
                let table = &tables[rng.gen_range(0..tables.len())];
                let _ = reader.table_summary(table, measure, 5);
            }
            latencies.push(start.elapsed().as_nanos() as u64);
        }
    }
    latencies
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Run one (workload, reader-count) configuration for `duration`.
#[allow(clippy::too_many_arguments)]
fn run_config(
    workload: &str,
    base: &MutableLake,
    measures: &[Measure],
    shards: usize,
    readers: usize,
    duration: Duration,
    seed: u64,
    mutation_seed: u64,
) -> ServingPoint {
    let (service, mut writer) = serve_sharded(
        base.clone(),
        ServiceConfig {
            measures: measures.to_vec(),
            cache_capacity: 64,
            prune_single_attribute_values: true,
            threads: 1,
        },
        shards,
    );

    // Hot query targets, fixed from epoch 0 so every run asks comparable
    // questions.
    let view = service.current();
    let hot_values: Vec<String> = view
        .top_k(measures[0], 64)
        .expect("served measure")
        .iter()
        .map(|s| s.value.clone())
        .collect();
    let tables: Vec<String> = view.table_names();
    drop(view);

    let stop = Arc::new(AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..readers)
        .map(|i| {
            let reader = service.reader();
            let measures = measures.to_vec();
            let hot = hot_values.clone();
            let tables = tables.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                reader_loop(reader, measures, hot, tables, seed ^ (i as u64 + 1), stop)
            })
        })
        .collect();

    // The single mutating writer: batched commits, steady publish cadence.
    let writer_stop = Arc::clone(&stop);
    let writer_base = base.clone();
    let writer_handle = std::thread::spawn(move || {
        let mut stream = MutationStream::new(MutationConfig {
            seed: mutation_seed,
            tables_per_delta: 2,
            rows_per_table: 40,
            ..MutationConfig::default()
        });
        let mut shadow = writer_base;
        while !writer_stop.load(Ordering::Relaxed) {
            for _ in 0..2 {
                let delta = stream.next_delta(&shadow);
                shadow.apply(&delta).expect("stream deltas apply");
                writer.stage(delta);
            }
            writer.commit().expect("batch commits cleanly");
            writer.publish();
            // Breathe: a lake that republishes in a hot loop starves its
            // readers for no realism gain.
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let started = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    // Measure the window now: readers stop counting at the flag, so joining
    // them — and the writer's final commit+publish tail — must not inflate
    // the QPS denominator.
    let elapsed = started.elapsed().as_secs_f64();
    let mut all_latencies: Vec<u64> = Vec::new();
    for handle in reader_handles {
        all_latencies.extend(handle.join().expect("reader thread"));
    }
    writer_handle.join().expect("writer thread");

    all_latencies.sort_unstable();
    let queries = all_latencies.len() as u64;
    let stats = service.cache_stats();
    ServingPoint {
        workload: workload.to_owned(),
        shards,
        readers,
        duration_s: elapsed,
        queries,
        qps: queries as f64 / elapsed,
        p50_us: percentile_us(&all_latencies, 0.50),
        p99_us: percentile_us(&all_latencies, 0.99),
        epochs_published: service.epochs_published().saturating_sub(1),
        cache_hit_rate: stats.hit_rate(),
        scaling_vs_single: 0.0, // filled in once the N=1 row exists
    }
}

fn serve_measures(base: &MutableLake, seed: u64) -> Vec<Measure> {
    // Sample-size heuristic only: the lake's value + attribute counts bound
    // the graph's node count closely enough, without paying a throwaway
    // graph build before serve() builds the real one.
    let nodes = LakeView::value_count(base) + LakeView::attribute_count(base);
    vec![
        Measure::lcc(),
        Measure::ApproxBc(ApproxBcConfig {
            samples: default_samples(nodes),
            strategy: SamplingStrategy::Uniform,
            seed,
        }),
    ]
}

fn main() {
    let args = ExpArgs::parse();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("== Concurrent snapshot serving: N readers vs 1 mutating writer ==");
    println!(
        "available parallelism: {cores} core(s), shards: {}\n",
        args.shards
    );

    let sb = SbGenerator::with_config(SbConfig {
        seed: args.seed,
        rows_per_table: args.scaled(400, 60),
    })
    .generate();
    let sb_lake = MutableLake::from_catalog(&sb.catalog);
    let tus = TusGenerator::new(tus_config(ExpArgs {
        scale: args.scale * 0.5,
        ..args
    }))
    .generate();
    let tus_lake = MutableLake::from_catalog(&tus.catalog);

    // Floor the window at half a second: on loaded single-core boxes a
    // shorter window lets one scheduler hiccup dominate the scaling ratio.
    let window = Duration::from_secs_f64((0.8 * args.scale).clamp(0.5, 10.0));
    let mut points: Vec<ServingPoint> = Vec::new();
    print_header(&[
        "Workload",
        "Shards",
        "Readers",
        "Queries",
        "QPS",
        "p50 (us)",
        "p99 (us)",
        "Epochs",
        "Cache hit",
        "Scaling",
    ]);
    for (workload, base) in [("SB", &sb_lake), ("TUS", &tus_lake)] {
        let measures = serve_measures(base, args.seed);
        let mut single_qps = 0.0;
        for readers in READER_COUNTS {
            // Same mutation seed for every reader count: the scaling ratio
            // must compare identical write workloads, not workload noise.
            let mut point = run_config(
                workload,
                base,
                &measures,
                args.shards,
                readers,
                window,
                args.seed,
                args.seed.wrapping_add(1),
            );
            if readers == 1 {
                single_qps = point.qps;
            }
            point.scaling_vs_single = if single_qps > 0.0 {
                point.qps / single_qps
            } else {
                0.0
            };
            print_row(&[
                point.workload.clone(),
                point.shards.to_string(),
                point.readers.to_string(),
                point.queries.to_string(),
                format!("{:.0}", point.qps),
                format!("{:.1}", point.p50_us),
                format!("{:.1}", point.p99_us),
                point.epochs_published.to_string(),
                format!("{:.0}%", point.cache_hit_rate * 100.0),
                format!("{:.2}x", point.scaling_vs_single),
            ]);
            points.push(point);
        }
    }

    let sb_8_reader_scaling = points
        .iter()
        .find(|p| p.workload == "SB" && p.readers == 8)
        .map(|p| p.scaling_vs_single)
        .unwrap_or(0.0);
    // The engine adds no serialization beyond the snapshot-pointer clone,
    // so expected scaling is what the hardware offers: 4x needs >= 8 cores
    // (8 readers + 1 writer timesharing); below that, demand proportionally
    // less, with a floor acknowledging that even 1 core must not *lose*
    // throughput to contention.
    let scaling_target = (cores as f64 / 2.0).clamp(0.9, 4.0);
    let pass = sb_8_reader_scaling >= scaling_target;
    println!(
        "\nHeadline: SB aggregate read throughput, 8 readers vs 1: {sb_8_reader_scaling:.2}x \
         (target {scaling_target:.2}x on {cores} core(s): {})",
        if pass { "PASS" } else { "FAIL" }
    );
    if cores < 8 {
        println!(
            "note: the 4x acceptance target assumes >= 8 cores; this machine \
             can express at most ~{cores}x parallel speedup."
        );
    }

    let report = ServingReport {
        seed: args.seed,
        scale: args.scale,
        shards: args.shards,
        available_parallelism: cores,
        scaling_target,
        points,
        sb_8_reader_scaling,
        pass,
    };
    write_bench_report("serving", &report);
}
