//! Figure 5 — the top-55 data values with the lowest LCC on the synthetic
//! benchmark.
//!
//! The paper's finding: LCC does *not* separate homographs from unambiguous
//! values — more than 75 % of the 55 lowest-LCC values are not homographs,
//! because unambiguous values from small domains also get low scores.

use bench::{print_header, print_row, write_report, ExpArgs};
use datagen::sb::SbGenerator;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::{precision_recall_at_k, Measure};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig5Report {
    k: usize,
    homographs_in_top_k: usize,
    precision: f64,
    recall: f64,
    f1: f64,
    top_values: Vec<(String, f64, bool)>,
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Figure 5: top-55 lowest LCC values on SB ==\n");

    let generated = SbGenerator::new(args.seed).generate();
    let truth = generated.homograph_set();
    let k = truth.len().clamp(1, 55);

    let net = DomainNetBuilder::new().build(&generated.catalog);
    println!(
        "SB graph: {} candidate values, {} attributes, {} edges; {} ground-truth homographs\n",
        net.candidate_count(),
        net.attribute_count(),
        net.edge_count(),
        truth.len()
    );

    let ranked = net.rank(Measure::lcc());
    let eval = precision_recall_at_k(&ranked, &truth, k);

    print_header(&["Rank", "Value", "LCC", "Homograph?"]);
    for (i, s) in ranked.iter().take(k).enumerate() {
        print_row(&[
            (i + 1).to_string(),
            s.value.clone(),
            format!("{:.4}", s.score),
            truth.contains(&s.value).to_string(),
        ]);
    }

    println!(
        "\nTop-{k} by LCC: {} homographs -> precision {:.3}, recall {:.3}, F1 {:.3}",
        eval.hits, eval.precision, eval.recall, eval.f1
    );
    println!("Paper (Figure 5): fewer than 25% of the top-55 LCC values are homographs.");

    let report = Fig5Report {
        k,
        homographs_in_top_k: eval.hits,
        precision: eval.precision,
        recall: eval.recall,
        f1: eval.f1,
        top_values: ranked
            .iter()
            .take(k)
            .map(|s| (s.value.clone(), s.score, truth.contains(&s.value)))
            .collect(),
    };
    write_report("fig5_lcc_sb", &report);
}
