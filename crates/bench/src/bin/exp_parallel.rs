//! Thread sweep: compute-core scaling and bit-identity at 1/2/4/8 threads.
//!
//! The whole compute core runs on the `dn-pool` work-stealing scheduler
//! with a deterministic indexed reduction: exact-BC and approximate-BC
//! source accumulation fold fixed canonical chunks in chunk-index order,
//! so every thread count — and every steal schedule within a thread
//! count — must produce bit-identical scores. This experiment pins both
//! halves of that contract: for threads ∈ {1, 2, 4, 8} on the SB and TUS
//! lakes it times exact BC and approximate BC, re-runs the widest width
//! to catch schedule-dependent flakiness, and verifies every score is
//! `to_bits()`-identical to the single-threaded run.
//!
//! The determinism gate is unconditional. The *speedup* gate (≥ 2x on SB
//! exact BC at 4 threads vs 1) is enforced only when the machine actually
//! has ≥ 4 cores: timings are always recorded honestly, and a 1-core CI
//! container cannot speed anything up, so there the report records the
//! core count and skips the ratio check rather than fabricating one. The
//! sweep is written to `BENCH_parallel.json` in the workspace root so the
//! scaling trajectory is tracked per PR.

use bench::{print_header, print_row, timed, write_bench_report, ExpArgs};
use datagen::sb::{SbConfig, SbGenerator};
use datagen::tus::TusGenerator;
use dn_graph::approx_bc::{approximate_betweenness, ApproxBcConfig, SamplingStrategy};
use dn_graph::bc::betweenness_centrality_parallel;
use dn_graph::BipartiteGraph;
use domainnet::pipeline::DomainNetBuilder;
use serde::Serialize;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Required SB exact-BC speedup at 4 threads over 1 — enforced only on
/// machines with at least [`SPEEDUP_MIN_CORES`] cores.
const SPEEDUP_TARGET: f64 = 2.0;
const SPEEDUP_MIN_CORES: usize = 4;

#[derive(Debug, Serialize)]
struct ParallelPoint {
    dataset: &'static str,
    kernel: &'static str,
    threads: usize,
    seconds: f64,
    speedup_vs_1: f64,
    bits_identical: bool,
}

#[derive(Debug, Serialize)]
struct ParallelReport {
    seed: u64,
    scale: f64,
    cores: usize,
    points: Vec<ParallelPoint>,
    bits_identical: bool,
    sb_exact_bc_speedup_at_4: f64,
    speedup_target: f64,
    speedup_enforced: bool,
    pass: bool,
}

/// `true` when every score in `got` is bit-for-bit the score in
/// `reference` — not approximately equal, *identical*.
fn bits_identical(reference: &[f64], got: &[f64]) -> bool {
    reference.len() == got.len()
        && reference
            .iter()
            .zip(got)
            .all(|(a, b)| a.to_bits() == b.to_bits())
}

/// Sweep one kernel over all thread counts, returning one point per width
/// plus a repeat of the widest width (schedule-dependent nondeterminism,
/// the bug this PR fixes, shows up across *runs* as much as across widths).
fn sweep(
    dataset: &'static str,
    kernel: &'static str,
    run: impl Fn(usize) -> (Vec<f64>, f64),
) -> Vec<ParallelPoint> {
    let mut points = Vec::new();
    let mut reference: Option<Vec<f64>> = None;
    let mut base_seconds = 0.0f64;
    let widths = THREAD_COUNTS
        .iter()
        .copied()
        .chain(std::iter::once(*THREAD_COUNTS.last().unwrap()));
    for threads in widths {
        let (scores, seconds) = run(threads);
        let identical = match &reference {
            None => {
                reference = Some(scores);
                base_seconds = seconds;
                true
            }
            Some(reference) => bits_identical(reference, &scores),
        };
        points.push(ParallelPoint {
            dataset,
            kernel,
            threads,
            seconds,
            speedup_vs_1: base_seconds / seconds.max(1e-12),
            bits_identical: identical,
        });
    }
    points
}

fn exact_bc_sweep(dataset: &'static str, graph: &BipartiteGraph) -> Vec<ParallelPoint> {
    sweep(dataset, "exact_bc", |threads| {
        timed(|| betweenness_centrality_parallel(graph, threads))
    })
}

fn approx_bc_sweep(dataset: &'static str, graph: &BipartiteGraph, seed: u64) -> Vec<ParallelPoint> {
    let samples = ((graph.node_count() as f64 * 0.05).ceil() as usize).clamp(32, 2_000);
    let config = ApproxBcConfig {
        samples,
        strategy: SamplingStrategy::Uniform,
        seed,
    };
    sweep(dataset, "approx_bc", move |threads| {
        timed(|| approximate_betweenness(graph, config, threads))
    })
}

fn main() {
    let args = ExpArgs::parse();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== Thread sweep: compute-core scaling & bit-identity ({cores} cores) ==\n");

    let sb = SbGenerator::with_config(SbConfig {
        seed: args.seed,
        rows_per_table: args.scaled(200, 60),
    })
    .generate();
    let sb_net = DomainNetBuilder::new().build(&sb.catalog);
    let tus = TusGenerator::new(bench::tus_config(args)).generate();
    let tus_net = DomainNetBuilder::new().build(&tus.catalog);
    println!(
        "SB graph: {} nodes / {} edges; TUS graph: {} nodes / {} edges\n",
        sb_net.graph().node_count(),
        sb_net.edge_count(),
        tus_net.graph().node_count(),
        tus_net.edge_count()
    );

    let mut points = Vec::new();
    points.extend(exact_bc_sweep("sb", sb_net.graph()));
    points.extend(approx_bc_sweep("sb", sb_net.graph(), args.seed));
    points.extend(exact_bc_sweep("tus", tus_net.graph()));
    points.extend(approx_bc_sweep("tus", tus_net.graph(), args.seed));

    print_header(&[
        "Dataset", "Kernel", "Threads", "Time (s)", "Speedup", "Bits ==",
    ]);
    for p in &points {
        print_row(&[
            p.dataset.to_owned(),
            p.kernel.to_owned(),
            p.threads.to_string(),
            format!("{:.3}", p.seconds),
            format!("{:.2}x", p.speedup_vs_1),
            p.bits_identical.to_string(),
        ]);
    }

    let bits_identical = points.iter().all(|p| p.bits_identical);
    // Speedup of the *first* threads=4 SB exact-BC point (the repeat of
    // the widest width is a determinism probe, not a timing sample).
    let sb_exact_bc_speedup_at_4 = points
        .iter()
        .find(|p| p.dataset == "sb" && p.kernel == "exact_bc" && p.threads == 4)
        .map_or(0.0, |p| p.speedup_vs_1);
    let speedup_enforced = cores >= SPEEDUP_MIN_CORES;
    let pass = bits_identical && (!speedup_enforced || sb_exact_bc_speedup_at_4 >= SPEEDUP_TARGET);

    println!(
        "\nHeadline: all scores bit-identical across widths and runs: {bits_identical}; \
         SB exact BC at 4 threads: {sb_exact_bc_speedup_at_4:.2}x vs 1 thread \
         (target >= {SPEEDUP_TARGET:.1}x, {} on this {cores}-core machine) -> {}",
        if speedup_enforced {
            "enforced"
        } else {
            "recorded but not enforced"
        },
        if pass { "PASS" } else { "FAIL" }
    );

    let report = ParallelReport {
        seed: args.seed,
        scale: args.scale,
        cores,
        points,
        bits_identical,
        sb_exact_bc_speedup_at_4,
        speedup_target: SPEEDUP_TARGET,
        speedup_enforced,
        pass,
    };
    write_bench_report("parallel", &report);
}
