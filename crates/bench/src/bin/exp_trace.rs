//! Tracing overhead gate: p99 HTTP latency, tracing off vs 1-in-16.
//!
//! The dn-trace design promise is that observability is close to free:
//! the disabled path of every instrumentation point is one relaxed atomic
//! load, and at the production default of 1-in-16 sampling the span
//! machinery (thread-local stacks, monotonic clock reads, ring publish)
//! must not move tail latency. This experiment proves it over the wire:
//! the same loopback server answers the same closed-loop query mix in
//! alternating rounds with sampling off and at 1-in-16, and the gate
//! requires the best-of-rounds p99 under sampling to stay within
//! [`MAX_P99_OVERHEAD_PCT`] of the untraced baseline (plus a small
//! absolute floor so microsecond-scale jitter on tiny deployments cannot
//! flake the gate). Rounds alternate modes on one server so thermal drift
//! and allocator state hit both sides equally; the first round of each
//! mode is discarded as warmup.
//!
//! The report also proves the instrumentation was actually live during
//! the sampled rounds: the ring's published-trace counter must advance,
//! at roughly 1/16 of the request volume.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{print_header, print_row, write_bench_report, ExpArgs};
use datagen::sb::{SbConfig, SbGenerator};
use dn_server::{percent_encode, serve_http, Client, Limits, Server, ServerConfig};
use dn_service::{serve_sharded, ServiceConfig};
use domainnet::Measure;
use lake::delta::MutableLake;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Sampled p99 may exceed the untraced p99 by at most this much.
const MAX_P99_OVERHEAD_PCT: f64 = 5.0;
/// ...or by this many microseconds, whichever is larger — absolute jitter
/// floor for machines where p99 is a handful of microseconds.
const ABS_P99_FLOOR_US: f64 = 25.0;
/// The production default sampling rate the gate certifies.
const SAMPLE_EVERY: u32 = 16;
/// Measured rounds per mode (one extra warmup round per mode is discarded).
const ROUNDS: usize = 3;

#[derive(Debug, Serialize)]
struct ModeStats {
    mode: String,
    sample_every: u32,
    rounds: usize,
    requests: u64,
    round_p99_us: Vec<f64>,
    best_p50_us: f64,
    best_p99_us: f64,
}

#[derive(Debug, Serialize)]
struct TraceReport {
    seed: u64,
    scale: f64,
    clients: usize,
    workers: usize,
    window_s: f64,
    max_p99_overhead_pct: f64,
    abs_p99_floor_us: f64,
    off: ModeStats,
    sampled: ModeStats,
    overhead_p50_pct: f64,
    overhead_p99_pct: f64,
    traces_published_during_sampled: u64,
    pass: bool,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// One closed-loop client firing the query mix for `window`; latency
/// samples in ns.
fn client_loop(
    addr: std::net::SocketAddr,
    hot: Vec<String>,
    seed: u64,
    stop: Arc<AtomicBool>,
) -> Vec<u64> {
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(1 << 14);
    while !stop.load(Ordering::Relaxed) {
        let dice = rng.gen_range(0..100u32);
        let path = if dice < 60 {
            let k = [10usize, 20, 50][rng.gen_range(0..3)];
            format!("/v1/top-k?measure=lcc&k={k}")
        } else if dice < 85 {
            format!(
                "/v1/score/{}",
                percent_encode(&hot[rng.gen_range(0..hot.len())])
            )
        } else {
            format!(
                "/v1/explain/{}",
                percent_encode(&hot[rng.gen_range(0..hot.len())])
            )
        };
        let started = Instant::now();
        match client.get(&path) {
            Ok(response) => debug_assert!(response.status == 200 || response.status == 404),
            Err(_) => continue,
        }
        samples.push(started.elapsed().as_nanos() as u64);
    }
    samples
}

/// One measured round against the shared server. The caller sets the
/// sampling mode before entry; this only drives load and collects ns.
fn run_round(
    addr: std::net::SocketAddr,
    hot: &[String],
    clients: usize,
    window: Duration,
    seed: u64,
) -> Vec<u64> {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let hot = hot.to_vec();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(addr, hot, seed ^ (i as u64 + 1), stop))
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut samples = Vec::new();
    for handle in handles {
        samples.extend(handle.join().expect("client thread"));
    }
    samples.sort_unstable();
    samples
}

fn mode_stats(mode: &str, sample_every: u32, rounds: &[Vec<u64>]) -> ModeStats {
    let p99s: Vec<f64> = rounds.iter().map(|r| percentile_us(r, 0.99)).collect();
    let best = p99s
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    ModeStats {
        mode: mode.to_owned(),
        sample_every,
        rounds: rounds.len(),
        requests: rounds.iter().map(|r| r.len() as u64).sum(),
        round_p99_us: p99s.clone(),
        best_p50_us: percentile_us(&rounds[best], 0.50),
        best_p99_us: p99s[best],
    }
}

fn main() {
    let args = ExpArgs::parse();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = cores.clamp(2, 8);
    let clients = cores.clamp(2, 4);
    let window = Duration::from_secs_f64((0.6 * args.scale).clamp(0.4, 5.0));
    println!("== dn-trace overhead: p99 with sampling off vs 1-in-{SAMPLE_EVERY} ==");
    println!(
        "available parallelism: {cores} core(s), workers: {workers}, clients: {clients}, \
window: {:.1}s x {ROUNDS} round(s)/mode (+1 warmup)\n",
        window.as_secs_f64()
    );

    let sb = SbGenerator::with_config(SbConfig {
        seed: args.seed,
        rows_per_table: ((400.0 * args.scale) as usize).max(60),
    })
    .generate();
    let lake = MutableLake::from_catalog(&sb.catalog);
    let (service, coordinator) = serve_sharded(
        lake,
        ServiceConfig {
            measures: vec![Measure::lcc(), Measure::exact_bc()],
            cache_capacity: 64,
            prune_single_attribute_values: true,
            threads: 1,
        },
        args.shards,
    );
    let server: Server = serve_http(
        service,
        coordinator,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            limits: Limits {
                read_timeout: Duration::from_secs(5),
                ..Limits::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let mut setup = Client::new(addr);
    let top: dn_server::api::TopKResponse = setup
        .get("/v1/top-k?measure=lcc&k=64")
        .expect("setup top-k")
        .json()
        .expect("setup top-k json");
    let hot: Vec<String> = top.results.iter().map(|s| s.value.clone()).collect();
    assert!(!hot.is_empty(), "SB lake serves a non-empty ranking");

    // Alternate off/sampled rounds on the one server; round 0 of each
    // mode is warmup and never scored.
    let mut off_rounds: Vec<Vec<u64>> = Vec::new();
    let mut sampled_rounds: Vec<Vec<u64>> = Vec::new();
    let published_before = dn_trace::traces_published();
    print_header(&["Round", "Mode", "Requests", "p50 (us)", "p99 (us)"]);
    for round in 0..=ROUNDS {
        for (mode, sample) in [("off", 0u32), ("sampled", SAMPLE_EVERY)] {
            dn_trace::set_sample_every(sample);
            let samples = run_round(addr, &hot, clients, window, args.seed ^ (round as u64) << 8);
            dn_trace::set_sample_every(0);
            if round > 0 {
                print_row(&[
                    round.to_string(),
                    mode.to_owned(),
                    samples.len().to_string(),
                    format!("{:.1}", percentile_us(&samples, 0.50)),
                    format!("{:.1}", percentile_us(&samples, 0.99)),
                ]);
                if sample == 0 {
                    off_rounds.push(samples);
                } else {
                    sampled_rounds.push(samples);
                }
            }
        }
    }
    let published = dn_trace::traces_published().saturating_sub(published_before);

    server.shutdown();
    server.join();

    let off = mode_stats("off", 0, &off_rounds);
    let sampled = mode_stats("sampled", SAMPLE_EVERY, &sampled_rounds);
    let overhead_pct = |base: f64, traced: f64| {
        if base <= 0.0 {
            0.0
        } else {
            (traced - base) / base * 100.0
        }
    };
    let overhead_p50_pct = overhead_pct(off.best_p50_us, sampled.best_p50_us);
    let overhead_p99_pct = overhead_pct(off.best_p99_us, sampled.best_p99_us);
    // The absolute floor widens the relative gate only when 5% of the
    // baseline p99 is below jitter scale.
    let allowed_pct =
        MAX_P99_OVERHEAD_PCT.max(ABS_P99_FLOOR_US / off.best_p99_us.max(1e-9) * 100.0);
    let pass = overhead_p99_pct <= allowed_pct && published > 0;
    println!(
        "\nHeadline: p99 off {:.1}us vs 1-in-{SAMPLE_EVERY} {:.1}us -> {overhead_p99_pct:+.2}% \
(gate {allowed_pct:.2}%); {published} trace(s) published: {}",
        off.best_p99_us,
        sampled.best_p99_us,
        if pass { "PASS" } else { "FAIL" }
    );

    let report = TraceReport {
        seed: args.seed,
        scale: args.scale,
        clients,
        workers,
        window_s: window.as_secs_f64(),
        max_p99_overhead_pct: MAX_P99_OVERHEAD_PCT,
        abs_p99_floor_us: ABS_P99_FLOOR_US,
        off,
        sampled,
        overhead_p50_pct,
        overhead_p99_pct,
        traces_published_during_sampled: published,
        pass,
    };
    write_bench_report("trace", &report);
}
