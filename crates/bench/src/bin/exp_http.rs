//! HTTP serving throughput: M closed-loop clients vs 1 HTTP writer.
//!
//! The `exp_serving` experiment measures the snapshot engine in-process;
//! this one measures the same engine **over the wire** through the
//! `dn-server` HTTP layer: M client threads drive a mixed query load
//! (top-k / score / explain / table summaries) against a loopback server
//! while one writer thread POSTs seeded mutation batches, all through the
//! blocking `dn_server::Client` — no external load tool needed. The server
//! always fronts the sharded coordinator; `--shards <n>` (default 1, which
//! is bit-identical to the single engine) sets how many component shards
//! it scatter-gathers over. Reported per (workload, M): aggregate
//! requests/sec, p50/p99 latency overall and per route, epochs published,
//! and the server-side cache hit rate.
//!
//! The acceptance target is *hardware-aware* and anchored to the
//! in-process numbers: the same binary first measures a single in-process
//! reader's QPS on the same lake, then requires the aggregate HTTP
//! throughput at the largest client count to stay within an overhead
//! budget of it. An HTTP request costs parsing, two socket round-trips,
//! and JSON encoding — a budget of 1/[`OVERHEAD_BUDGET`] per request,
//! scaled by the parallelism the machine can actually express, catches
//! order-of-magnitude regressions (per-request connects, accidental
//! serialization on the read path) without flaking on small CI boxes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{default_samples, print_header, print_row, tus_config, write_bench_report, ExpArgs};
use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use datagen::tus::TusGenerator;
use dn_graph::approx_bc::{ApproxBcConfig, SamplingStrategy};
use dn_server::api::{MutationRequest, TablesResponse, TopKResponse};
use dn_server::{percent_encode, serve_http, Client, Limits, Route, Server, ServerConfig};
use dn_service::{serve, serve_sharded, ServiceConfig};
use domainnet::Measure;
use lake::delta::{LakeView, MutableLake};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// One HTTP request is allowed to cost up to this many in-process queries.
const OVERHEAD_BUDGET: f64 = 200.0;

#[derive(Debug, Serialize)]
struct RouteLatency {
    route: String,
    requests: u64,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Debug, Serialize)]
struct HttpPoint {
    workload: String,
    shards: usize,
    clients: usize,
    duration_s: f64,
    requests: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    per_route: Vec<RouteLatency>,
    epochs_published: u64,
    cache_hit_rate: f64,
    scaling_vs_single: f64,
}

#[derive(Debug, Serialize)]
struct InProcessBaseline {
    workload: String,
    single_reader_qps: f64,
}

#[derive(Debug, Serialize)]
struct HttpReport {
    seed: u64,
    scale: f64,
    shards: usize,
    available_parallelism: usize,
    workers: usize,
    overhead_budget: f64,
    baselines: Vec<InProcessBaseline>,
    points: Vec<HttpPoint>,
    sb_qps_at_max_clients: f64,
    target_qps: f64,
    pass: bool,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// The measures the server serves: LCC plus seeded approximate BC, the
/// same pair `exp_serving` uses — commits stay incremental-fast, so the
/// comparison between the two experiments is apples-to-apples.
fn serve_measures(base: &MutableLake, seed: u64) -> Vec<Measure> {
    let nodes = LakeView::value_count(base) + LakeView::attribute_count(base);
    vec![
        Measure::lcc(),
        Measure::ApproxBc(ApproxBcConfig {
            samples: default_samples(nodes),
            strategy: SamplingStrategy::Uniform,
            seed,
        }),
    ]
}

/// The same query mix the HTTP clients fire, answered in-process by one
/// reader *while the same mutation stream commits in-process* — the
/// yardstick the HTTP overhead budget is measured against. Running the
/// writer here too keeps the comparison symmetric: both sides pay for
/// concurrent incremental maintenance on the same box.
fn inprocess_single_reader_qps(
    base: &MutableLake,
    measures: &[Measure],
    window: Duration,
    mutation_seed: u64,
) -> f64 {
    let (service, mut writer) = serve(
        base.clone(),
        ServiceConfig {
            measures: measures.to_vec(),
            cache_capacity: 64,
            prune_single_attribute_values: true,
            threads: 1,
        },
    );
    let snapshot = service.current();
    let hot: Vec<String> = snapshot
        .ranking(measures[0])
        .expect("served measure")
        .iter()
        .take(64)
        .map(|s| s.value.clone())
        .collect();
    let tables: Vec<String> = snapshot.table_names().map(str::to_owned).collect();
    drop(snapshot);

    let stop = Arc::new(AtomicBool::new(false));
    let writer_stop = Arc::clone(&stop);
    let writer_base = base.clone();
    let writer_handle = std::thread::spawn(move || {
        let mut stream = MutationStream::new(MutationConfig {
            seed: mutation_seed,
            tables_per_delta: 2,
            rows_per_table: 40,
            ..MutationConfig::default()
        });
        let mut shadow = writer_base;
        while !writer_stop.load(Ordering::Relaxed) {
            let delta = stream.next_delta(&shadow);
            shadow.apply(&delta).expect("stream deltas apply");
            writer.stage(delta);
            writer.commit().expect("batch commits cleanly");
            writer.publish();
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let mut reader = service.reader();
    let mut rng = StdRng::seed_from_u64(7);
    let started = Instant::now();
    let mut queries = 0u64;
    while started.elapsed() < window {
        reader.pin();
        for _ in 0..16 {
            let measure = measures[rng.gen_range(0..measures.len())];
            let dice = rng.gen_range(0..100u32);
            if dice < 50 {
                let _ = reader.top_k(measure, 20);
            } else if dice < 70 {
                let _ = reader.score_card(measure, &hot[rng.gen_range(0..hot.len())]);
            } else if dice < 85 {
                let _ = reader.explain(&hot[rng.gen_range(0..hot.len())]);
            } else {
                let _ = reader.table_summary(&tables[rng.gen_range(0..tables.len())], measure, 5);
            }
            queries += 1;
        }
    }
    let qps = queries as f64 / started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer_handle.join().expect("in-process writer thread");
    qps
}

/// One closed-loop HTTP client. Returns per-route latency samples in ns.
fn client_loop(
    addr: std::net::SocketAddr,
    hot: Vec<String>,
    tables: Vec<String>,
    seed: u64,
    stop: Arc<AtomicBool>,
) -> Vec<(Route, u64)> {
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples: Vec<(Route, u64)> = Vec::with_capacity(1 << 14);
    while !stop.load(Ordering::Relaxed) {
        let dice = rng.gen_range(0..100u32);
        let (route, path) = if dice < 50 {
            let measure = if rng.gen_range(0..2u32) == 0 {
                "approx_bc"
            } else {
                "lcc"
            };
            let k = [10usize, 20, 50][rng.gen_range(0..3)];
            (Route::TopK, format!("/v1/top-k?measure={measure}&k={k}"))
        } else if dice < 70 {
            let value = percent_encode(&hot[rng.gen_range(0..hot.len())]);
            (Route::Score, format!("/v1/score/{value}"))
        } else if dice < 85 {
            let value = percent_encode(&hot[rng.gen_range(0..hot.len())]);
            (Route::Explain, format!("/v1/explain/{value}"))
        } else {
            let table = percent_encode(&tables[rng.gen_range(0..tables.len())]);
            (
                Route::TableSummary,
                format!("/v1/tables/{table}?measure=lcc&k=5"),
            )
        };
        let started = Instant::now();
        match client.get(&path) {
            // 404 is legal mid-stream: a mutation can remove a hot value.
            Ok(response) => debug_assert!(response.status == 200 || response.status == 404),
            Err(_) => continue, // reconnect happens inside the client
        }
        samples.push((route, started.elapsed().as_nanos() as u64));
    }
    samples
}

#[allow(clippy::too_many_arguments)]
fn run_config(
    workload: &str,
    base: &MutableLake,
    measures: &[Measure],
    shards: usize,
    clients: usize,
    workers: usize,
    window: Duration,
    seed: u64,
    mutation_seed: u64,
) -> HttpPoint {
    let (service, coordinator) = serve_sharded(
        base.clone(),
        ServiceConfig {
            measures: measures.to_vec(),
            cache_capacity: 64,
            prune_single_attribute_values: true,
            threads: 1,
        },
        shards,
    );
    let server: Server = serve_http(
        service,
        coordinator,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            limits: Limits {
                read_timeout: Duration::from_secs(5),
                ..Limits::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Fix the hot query targets from epoch 0 over the wire.
    let mut setup = Client::new(addr);
    let top: TopKResponse = setup
        .get("/v1/top-k?k=64")
        .expect("setup top-k")
        .json()
        .expect("setup top-k json");
    let hot: Vec<String> = top.results.iter().map(|s| s.value.clone()).collect();
    let tables: Vec<String> = setup
        .get("/v1/tables")
        .expect("setup tables")
        .json::<TablesResponse>()
        .expect("setup tables json")
        .tables;

    let stop = Arc::new(AtomicBool::new(false));
    let client_handles: Vec<_> = (0..clients)
        .map(|i| {
            let hot = hot.clone();
            let tables = tables.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(addr, hot, tables, seed ^ (i as u64 + 1), stop))
        })
        .collect();

    // The single HTTP writer: one batch per POST, steady cadence.
    let writer_stop = Arc::clone(&stop);
    let writer_base = base.clone();
    let writer_handle = std::thread::spawn(move || {
        let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
        let mut stream = MutationStream::new(MutationConfig {
            seed: mutation_seed,
            tables_per_delta: 2,
            rows_per_table: 40,
            ..MutationConfig::default()
        });
        let mut shadow = writer_base;
        while !writer_stop.load(Ordering::Relaxed) {
            let delta = stream.next_delta(&shadow);
            shadow.apply(&delta).expect("stream deltas apply");
            let body = serde_json::to_string(&MutationRequest {
                deltas: vec![delta],
            })
            .expect("encode");
            let response = client
                .post_json("/v1/mutations", &body)
                .expect("post batch");
            assert_eq!(response.status, 200, "{}", response.body);
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed().as_secs_f64();
    let mut samples: Vec<(Route, u64)> = Vec::new();
    for handle in client_handles {
        samples.extend(handle.join().expect("client thread"));
    }
    writer_handle.join().expect("writer thread");

    let service = server.service();
    let cache = service.cache_stats();
    let epochs = service.epochs_published().saturating_sub(1);
    server.shutdown();
    server.join();

    let mut all: Vec<u64> = samples.iter().map(|&(_, ns)| ns).collect();
    all.sort_unstable();
    let mut per_route = Vec::new();
    for route in [
        Route::TopK,
        Route::Score,
        Route::Explain,
        Route::TableSummary,
    ] {
        let mut route_ns: Vec<u64> = samples
            .iter()
            .filter(|&&(r, _)| r == route)
            .map(|&(_, ns)| ns)
            .collect();
        route_ns.sort_unstable();
        per_route.push(RouteLatency {
            route: route.label().to_owned(),
            requests: route_ns.len() as u64,
            p50_us: percentile_us(&route_ns, 0.50),
            p99_us: percentile_us(&route_ns, 0.99),
        });
    }
    let requests = all.len() as u64;
    HttpPoint {
        workload: workload.to_owned(),
        shards,
        clients,
        duration_s: elapsed,
        requests,
        qps: requests as f64 / elapsed,
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        per_route,
        epochs_published: epochs,
        cache_hit_rate: cache.hit_rate(),
        scaling_vs_single: 0.0,
    }
}

fn main() {
    let args = ExpArgs::parse();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = cores.clamp(2, 8);
    println!("== HTTP serving: M closed-loop clients vs 1 HTTP writer ==");
    println!(
        "available parallelism: {cores} core(s), server workers: {workers}, shards: {}\n",
        args.shards
    );

    let sb = SbGenerator::with_config(SbConfig {
        seed: args.seed,
        rows_per_table: args.scaled(400, 60),
    })
    .generate();
    let sb_lake = MutableLake::from_catalog(&sb.catalog);
    let tus = TusGenerator::new(tus_config(ExpArgs {
        scale: args.scale * 0.5,
        ..args
    }))
    .generate();
    let tus_lake = MutableLake::from_catalog(&tus.catalog);

    let window = Duration::from_secs_f64((0.8 * args.scale).clamp(0.5, 10.0));
    let baseline_window = Duration::from_secs_f64(window.as_secs_f64() * 0.5);

    let mut baselines = Vec::new();
    let mut points: Vec<HttpPoint> = Vec::new();
    print_header(&[
        "Workload",
        "Shards",
        "Clients",
        "Requests",
        "QPS",
        "p50 (us)",
        "p99 (us)",
        "Epochs",
        "Cache hit",
        "Scaling",
    ]);
    for (workload, base) in [("SB", &sb_lake), ("TUS", &tus_lake)] {
        let measures = serve_measures(base, args.seed);
        let inproc = inprocess_single_reader_qps(
            base,
            &measures,
            baseline_window,
            args.seed.wrapping_add(1),
        );
        baselines.push(InProcessBaseline {
            workload: workload.to_owned(),
            single_reader_qps: inproc,
        });
        let mut single_qps = 0.0;
        for clients in CLIENT_COUNTS {
            let mut point = run_config(
                workload,
                base,
                &measures,
                args.shards,
                clients,
                workers,
                window,
                args.seed,
                args.seed.wrapping_add(1),
            );
            if clients == 1 {
                single_qps = point.qps;
            }
            point.scaling_vs_single = if single_qps > 0.0 {
                point.qps / single_qps
            } else {
                0.0
            };
            print_row(&[
                point.workload.clone(),
                point.shards.to_string(),
                point.clients.to_string(),
                point.requests.to_string(),
                format!("{:.0}", point.qps),
                format!("{:.1}", point.p50_us),
                format!("{:.1}", point.p99_us),
                point.epochs_published.to_string(),
                format!("{:.0}%", point.cache_hit_rate * 100.0),
                format!("{:.2}x", point.scaling_vs_single),
            ]);
            points.push(point);
        }
    }

    let sb_qps_at_max_clients = points
        .iter()
        .find(|p| p.workload == "SB" && p.clients == *CLIENT_COUNTS.last().unwrap())
        .map(|p| p.qps)
        .unwrap_or(0.0);
    let sb_inproc = baselines
        .iter()
        .find(|b| b.workload == "SB")
        .map(|b| b.single_reader_qps)
        .unwrap_or(0.0);
    // Hardware-aware target: one in-process reader answers `sb_inproc`
    // queries/sec; the HTTP stack may spend OVERHEAD_BUDGET in-process
    // queries per request, and M clients + workers can express at most
    // ~cores of parallelism, credited at half (client and server threads
    // share the box in this closed-loop setup).
    let parallel_credit = (cores.min(CLIENT_COUNTS[CLIENT_COUNTS.len() - 1]) as f64 / 2.0).max(1.0);
    let target_qps = sb_inproc / OVERHEAD_BUDGET * parallel_credit;
    let pass = sb_qps_at_max_clients >= target_qps;
    println!(
        "\nHeadline: SB aggregate HTTP throughput at {} clients: {sb_qps_at_max_clients:.0} req/s \
         (in-process single reader: {sb_inproc:.0} q/s; target {target_qps:.0} req/s: {})",
        CLIENT_COUNTS[CLIENT_COUNTS.len() - 1],
        if pass { "PASS" } else { "FAIL" }
    );

    let report = HttpReport {
        seed: args.seed,
        scale: args.scale,
        shards: args.shards,
        available_parallelism: cores,
        workers,
        overhead_budget: OVERHEAD_BUDGET,
        baselines,
        points,
        sb_qps_at_max_clients,
        target_qps,
        pass,
    };
    write_bench_report("http", &report);
}
