//! Incremental vs. full-rebuild maintenance latency under lake mutations.
//!
//! This experiment goes beyond the paper: DomainNet (§4–5) evaluates static
//! snapshots, but a production lake mutates continuously. We replay a seeded
//! single-table mutation stream (table adds, removes, and cell rewrites —
//! see `datagen::mutate`) against the SB and TUS workloads and compare, per
//! mutation batch:
//!
//! * **incremental** — `MutableLake::apply` + `DomainNet::apply_delta`
//!   (CSR patch, dirty-region LCC, component-scoped BC re-estimation) +
//!   re-ranking from the patched score caches;
//! * **rebuild** — what the pre-incremental system had to do: re-derive the
//!   catalog from the live tables (`MutableLake::snapshot`, the moral
//!   equivalent of the old `LakeCatalog::rebuilt`), then a from-scratch
//!   `DomainNetBuilder::build` and a cold scoring + ranking pass. A
//!   *warm rebuild* column (graph + scores only, reusing the already-updated
//!   mutable catalog) is reported alongside for transparency.
//!
//! For the exact measures (LCC) the two paths are verified to produce
//! identical rankings at every step. The headline number is the speedup at
//! single-table granularity on SB, which the incremental subsystem must win
//! by ≥5×.

use bench::{default_samples, print_header, print_row, timed, tus_config, write_report, ExpArgs};
use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use datagen::tus::TusGenerator;
use dn_graph::approx_bc::{ApproxBcConfig, SamplingStrategy};
use dn_graph::lcc::LccMethod;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use lake::delta::MutableLake;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct GranularityPoint {
    workload: String,
    measure: String,
    tables_per_delta: usize,
    steps: usize,
    incremental_mean_ms: f64,
    rebuild_mean_ms: f64,
    warm_rebuild_mean_ms: f64,
    speedup: f64,
    warm_speedup: f64,
    mean_dirty_values: f64,
    mean_touched_component_nodes: f64,
    equivalence_checked: bool,
}

#[derive(Debug, Serialize)]
struct IncrementalReport {
    seed: u64,
    scale: f64,
    points: Vec<GranularityPoint>,
    sb_single_table_lcc_speedup: f64,
}

/// Replay one mutation stream, timing both maintenance strategies.
#[allow(clippy::too_many_arguments)]
fn run_stream(
    workload: &str,
    base: &MutableLake,
    measure: Measure,
    measure_name: &str,
    tables_per_delta: usize,
    steps: usize,
    seed: u64,
    check_equivalence: bool,
) -> GranularityPoint {
    let mut lake = base.clone();
    let mut stream = MutationStream::new(MutationConfig {
        seed,
        tables_per_delta,
        ..MutationConfig::default()
    });
    let builder = DomainNetBuilder::new();
    let mut net = builder.build(&lake);
    // Warm the score cache so every step exercises the patch path.
    let _ = net.rank_shared(measure);

    let mut incr_total = 0.0;
    let mut rebuild_total = 0.0;
    let mut warm_rebuild_total = 0.0;
    let mut dirty_total = 0usize;
    let mut touched_total = 0usize;
    for step in 0..steps {
        let delta = stream.next_delta(&lake);
        let (effects, apply_secs) = timed(|| lake.apply(&delta).expect("stream deltas apply"));
        let ((), incr_secs) = timed(|| {
            let stats = net
                .apply_delta(&lake, &effects)
                .expect("effects match the maintained net");
            dirty_total += stats.dirty_values;
            touched_total += stats.touched_component_nodes;
            let _ = net.rank_shared(measure);
        });
        incr_total += apply_secs + incr_secs;

        // Cold rebuild: catalog re-derivation + graph build + cold scores.
        let (fresh, rebuild_secs) = timed(|| {
            let snapshot = lake.snapshot().expect("live tables are well-formed");
            let fresh = builder.build(&snapshot);
            let _ = fresh.rank_shared(measure);
            fresh
        });
        rebuild_total += rebuild_secs;
        // Warm rebuild: reuse the incrementally maintained catalog.
        let ((), warm_secs) = timed(|| {
            let warm = builder.build(&lake);
            let _ = warm.rank_shared(measure);
        });
        warm_rebuild_total += warm_secs;

        if check_equivalence {
            // Per-value comparison: the two graphs lay out nodes in different
            // orders, so float summation order (and thus rank order among
            // exact ties) can differ at the last ulp — scores must agree to
            // 1e-9 value-by-value.
            let a = net.rank_shared(measure);
            let b = fresh.rank_shared(measure);
            assert_eq!(a.len(), b.len(), "{workload} step {step}: ranking sizes");
            let by_value: std::collections::HashMap<&str, f64> =
                b.iter().map(|s| (s.value.as_str(), s.score)).collect();
            for x in a.iter() {
                let y = by_value
                    .get(x.value.as_str())
                    .unwrap_or_else(|| panic!("{workload} step {step}: {} missing", x.value));
                assert!(
                    (x.score - y).abs() < 1e-9,
                    "{workload} step {step}: {} scored {} vs {}",
                    x.value,
                    x.score,
                    y
                );
            }
        }
    }

    let incremental_mean_ms = incr_total / steps as f64 * 1e3;
    let rebuild_mean_ms = rebuild_total / steps as f64 * 1e3;
    let warm_rebuild_mean_ms = warm_rebuild_total / steps as f64 * 1e3;
    GranularityPoint {
        workload: workload.to_owned(),
        measure: measure_name.to_owned(),
        tables_per_delta,
        steps,
        incremental_mean_ms,
        rebuild_mean_ms,
        warm_rebuild_mean_ms,
        speedup: rebuild_mean_ms / incremental_mean_ms.max(1e-9),
        warm_speedup: warm_rebuild_mean_ms / incremental_mean_ms.max(1e-9),
        mean_dirty_values: dirty_total as f64 / steps as f64,
        mean_touched_component_nodes: touched_total as f64 / steps as f64,
        equivalence_checked: check_equivalence,
    }
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Incremental lake maintenance vs. full rebuild ==\n");

    let sb = SbGenerator::with_config(SbConfig {
        seed: args.seed,
        rows_per_table: args.scaled(1000, 60),
    })
    .generate();
    let sb_lake = MutableLake::from_catalog(&sb.catalog);
    println!(
        "SB base lake: {} tables, {} attributes, {} values",
        sb_lake.live_table_count(),
        lake::delta::LakeView::attribute_count(&sb_lake),
        lake::delta::LakeView::value_count(&sb_lake),
    );

    let tus = TusGenerator::new(tus_config(args)).generate();
    let tus_lake = MutableLake::from_catalog(&tus.catalog);
    println!(
        "TUS base lake: {} tables, {} attributes, {} values\n",
        tus_lake.live_table_count(),
        lake::delta::LakeView::attribute_count(&tus_lake),
        lake::delta::LakeView::value_count(&tus_lake),
    );

    let steps = args.scaled(5, 3);
    let granularities = [1usize, 2, 4];

    let sb_nodes = DomainNetBuilder::new().build(&sb_lake).graph().node_count();
    let tus_nodes = DomainNetBuilder::new()
        .build(&tus_lake)
        .graph()
        .node_count();
    let approx = |nodes: usize| {
        Measure::ApproxBc(ApproxBcConfig {
            samples: default_samples(nodes),
            strategy: SamplingStrategy::Uniform,
            seed: args.seed,
        })
    };

    // (workload, lake, measure, name, equivalence-checkable)
    let runs: Vec<(&str, &MutableLake, Measure, &str, bool)> = vec![
        ("SB", &sb_lake, Measure::lcc(), "LCC", true),
        ("SB", &sb_lake, approx(sb_nodes), "BC(approx)", false),
        (
            "TUS",
            &tus_lake,
            Measure::Lcc(LccMethod::AttributeJaccard),
            "LCC(attr)",
            true,
        ),
        ("TUS", &tus_lake, approx(tus_nodes), "BC(approx)", false),
    ];

    let mut points = Vec::new();
    print_header(&[
        "Workload",
        "Measure",
        "Tables/delta",
        "Incremental (ms)",
        "Rebuild (ms)",
        "Warm rebuild (ms)",
        "Speedup",
        "Warm speedup",
        "Dirty values",
        "Touched nodes",
    ]);
    for &(workload, base, measure, name, check) in &runs {
        for &g in &granularities {
            let point = run_stream(workload, base, measure, name, g, steps, args.seed, check);
            print_row(&[
                point.workload.clone(),
                point.measure.clone(),
                point.tables_per_delta.to_string(),
                format!("{:.2}", point.incremental_mean_ms),
                format!("{:.2}", point.rebuild_mean_ms),
                format!("{:.2}", point.warm_rebuild_mean_ms),
                format!("{:.1}x", point.speedup),
                format!("{:.1}x", point.warm_speedup),
                format!("{:.0}", point.mean_dirty_values),
                format!("{:.0}", point.mean_touched_component_nodes),
            ]);
            points.push(point);
        }
    }

    let headline = points
        .iter()
        .find(|p| p.workload == "SB" && p.measure == "LCC" && p.tables_per_delta == 1)
        .map(|p| p.speedup)
        .unwrap_or(0.0);
    println!(
        "\nHeadline: SB, single-table granularity, LCC maintenance: {headline:.1}x \
         ({})",
        if headline >= 5.0 {
            "PASS, >= 5x required"
        } else {
            "FAIL, >= 5x required"
        }
    );
    println!(
        "Exact measures (LCC) were verified step-by-step: incremental ranking == \
         from-scratch ranking."
    );

    let report = IncrementalReport {
        seed: args.seed,
        scale: args.scale,
        points,
        sb_single_table_lcc_speedup: headline,
    };
    write_report("incremental", &report);
}
