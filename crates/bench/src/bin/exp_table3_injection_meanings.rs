//! Table 3 — percentage of the injected homographs appearing in the top-50 BC
//! results, as a function of the number of meanings per injected homograph.
//!
//! Paper: with the cardinality of replaced values held high, recall rises
//! from 97.5 % at 2 meanings to 100 % at 6–8 meanings; homographs with more
//! meanings bridge more communities and are easier to spot.

use std::collections::BTreeSet;

use bench::{default_samples, print_header, print_row, write_report, ExpArgs};
use datagen::inject::{inject_homographs, remove_homographs, InjectionConfig};
use datagen::tus::TusGenerator;
use domainnet::eval::recall_of_expected_in_top_k;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct MeaningsResult {
    meanings: usize,
    runs: usize,
    injected_per_run: usize,
    mean_recall_in_top_k: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let injections = 50usize;
    let runs = 2usize;
    println!("== Table 3: injected-homograph recall vs number of meanings ==\n");

    let generated = TusGenerator::new(bench::tus_config(args)).generate();
    let clean = remove_homographs(&generated);

    // Hold the cardinality of the replaced values high, as in the paper
    // (attributes in the top half of the cardinality range).
    let max_card = clean
        .catalog
        .attribute_ids()
        .map(|a| clean.catalog.attribute_cardinality(a))
        .max()
        .unwrap_or(0);
    let threshold = max_card / 2;
    println!("Cardinality threshold fixed at {threshold} (half the largest attribute)\n");

    let mut results = Vec::new();
    for meanings in 2..=8usize {
        let mut recalls = Vec::new();
        for run in 0..runs {
            let injected = match inject_homographs(
                &clean,
                InjectionConfig {
                    count: injections,
                    meanings,
                    min_attr_cardinality: threshold,
                    seed: args.seed + run as u64 * 977 + meanings as u64,
                },
            ) {
                Some(r) => r,
                None => continue,
            };
            let net = DomainNetBuilder::new().build(&injected.lake.catalog);
            let samples = default_samples(net.graph().node_count());
            let ranked = net.rank(Measure::approx_bc(samples, args.seed + run as u64));
            let expected: BTreeSet<String> = injected.injected.iter().cloned().collect();
            recalls.push(recall_of_expected_in_top_k(&ranked, &expected, injections));
        }
        if recalls.is_empty() {
            println!("  (meanings {meanings}: not enough eligible classes, skipped)");
            continue;
        }
        let mean = recalls.iter().sum::<f64>() / recalls.len() as f64;
        results.push(MeaningsResult {
            meanings,
            runs: recalls.len(),
            injected_per_run: injections,
            mean_recall_in_top_k: mean,
        });
    }

    print_header(&["# meanings", "Runs", "% injected in top-50"]);
    for r in &results {
        print_row(&[
            r.meanings.to_string(),
            r.runs.to_string(),
            format!("{:.1}%", 100.0 * r.mean_recall_in_top_k),
        ]);
    }

    println!("\nPaper (Table 3): 97.5 / 97.5 / 98.5 / 98.5 / 100 / 100 / 100 % for 2..8 meanings.");
    println!("Expected shape: recall is high throughout and does not degrade as meanings grow.");

    write_report("table3_injection_meanings", &results);
}
