//! Shard sweep: coordinator cost & equivalence at 1 / 2 / 4 shards.
//!
//! The serving engine can be partitioned by connected component behind the
//! scatter-gather coordinator (`dn_service::serve_sharded`). Sharding must
//! be free where it should be free — a merged top-k over N shards is a
//! k-way merge of already-ranked lists, and every score is computed by the
//! one shard owning the value's component — so this experiment measures
//! exactly that: for shards ∈ {1, 2, 4} on the same SB lake and the same
//! seeded mutation stream, it reports initial build time, total mutation
//! commit+publish time, merged-read throughput, and the maximum absolute
//! score deviation of the merged ranking from the unsharded run.
//!
//! The acceptance gate is correctness, not speed: every sharded ranking
//! must agree with `--shards 1` per value to 1e-9 (exact measures are
//! served, so the only legal deviation is float summation order after a
//! cross-shard component migration), and the ranked value sets must be
//! identical. The whole sweep is written to `BENCH_shard.json` in the
//! workspace root so the cost of the coordinator layer is tracked per PR.

use std::collections::HashMap;
use std::time::Instant;

use bench::{print_header, print_row, timed, write_bench_report, ExpArgs};
use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use dn_service::{serve_sharded, ServiceConfig};
use domainnet::Measure;
use lake::delta::MutableLake;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Scores of exact measures may differ across shard counts only by float
/// summation order after a component migration rebuilds a shard's graph.
const EQUIVALENCE_EPS: f64 = 1e-9;

#[derive(Debug, Serialize)]
struct ShardPoint {
    shards: usize,
    build_s: f64,
    mutate_s: f64,
    queries: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    epoch: u64,
    max_abs_score_delta: f64,
}

#[derive(Debug, Serialize)]
struct ShardReport {
    seed: u64,
    scale: f64,
    deltas: usize,
    equivalence_eps: f64,
    points: Vec<ShardPoint>,
    max_abs_score_delta: f64,
    pass: bool,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Final merged rankings, one `value -> score` map per served measure.
type Rankings = Vec<HashMap<String, f64>>;

fn run_shards(
    base: &MutableLake,
    measures: &[Measure],
    shards: usize,
    delta_count: usize,
    query_count: u64,
    seed: u64,
) -> (ShardPoint, Rankings) {
    let ((service, mut coordinator), build_s) = timed(|| {
        serve_sharded(
            base.clone(),
            ServiceConfig {
                measures: measures.to_vec(),
                cache_capacity: 64,
                prune_single_attribute_values: true,
                threads: 1,
            },
            shards,
        )
    });

    // Same seeded mutation stream for every shard count, so the final
    // lakes — and therefore the final rankings — are comparable.
    let mut stream = MutationStream::new(MutationConfig {
        seed: seed.wrapping_add(1),
        tables_per_delta: 2,
        rows_per_table: 40,
        ..MutationConfig::default()
    });
    let mut shadow = base.clone();
    let ((), mutate_s) = timed(|| {
        for _ in 0..delta_count {
            let delta = stream.next_delta(&shadow);
            shadow.apply(&delta).expect("stream deltas apply");
            coordinator.stage(delta);
            coordinator.commit().expect("batch commits cleanly");
            coordinator.publish();
        }
    });

    // Merged-read throughput over the final epoch: top-k + score cards,
    // the two routes whose cost the coordinator actually changes.
    let mut reader = service.reader();
    reader.pin();
    let hot: Vec<String> = reader
        .top_k(measures[0], 64)
        .expect("served measure")
        .iter()
        .map(|s| s.value.clone())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AD);
    let mut latencies = Vec::with_capacity(query_count as usize);
    let ks = [10usize, 20, 50];
    for _ in 0..query_count {
        let measure = measures[rng.gen_range(0..measures.len())];
        let start = Instant::now();
        if rng.gen_range(0..100u32) < 60 {
            let _ = reader.top_k(measure, ks[rng.gen_range(0..ks.len())]);
        } else {
            let _ = reader.score_card(measure, &hot[rng.gen_range(0..hot.len())]);
        }
        latencies.push(start.elapsed().as_nanos() as u64);
    }
    let elapsed_s = latencies.iter().sum::<u64>() as f64 / 1e9;
    latencies.sort_unstable();

    let view = reader.view().clone();
    let rankings: Rankings = measures
        .iter()
        .map(|&m| {
            view.top_k(m, usize::MAX)
                .expect("served measure")
                .into_iter()
                .map(|s| (s.value, s.score))
                .collect()
        })
        .collect();

    (
        ShardPoint {
            shards,
            build_s,
            mutate_s,
            queries: query_count,
            qps: query_count as f64 / elapsed_s.max(1e-9),
            p50_us: percentile_us(&latencies, 0.50),
            p99_us: percentile_us(&latencies, 0.99),
            epoch: service.epoch(),
            max_abs_score_delta: 0.0, // filled in against the shards=1 run
        },
        rankings,
    )
}

/// Largest per-value |score delta| vs the reference, or `f64::INFINITY`
/// when the ranked value sets differ at all.
fn max_delta(reference: &Rankings, other: &Rankings) -> f64 {
    let mut worst = 0.0f64;
    for (ref_map, other_map) in reference.iter().zip(other) {
        if ref_map.len() != other_map.len() {
            return f64::INFINITY;
        }
        for (value, score) in ref_map {
            match other_map.get(value) {
                Some(other_score) => worst = worst.max((score - other_score).abs()),
                None => return f64::INFINITY,
            }
        }
    }
    worst
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Shard sweep: coordinator cost & equivalence at 1/2/4 shards ==\n");

    let sb = SbGenerator::with_config(SbConfig {
        seed: args.seed,
        rows_per_table: args.scaled(200, 60),
    })
    .generate();
    let base = MutableLake::from_catalog(&sb.catalog);
    // Exact measures only: equivalence to 1e-9 is the headline, and the
    // approximate-BC sampler is salted by generation, not comparable.
    let measures = [Measure::lcc(), Measure::exact_bc()];
    let delta_count = args.scaled(12, 4);
    let query_count = args.scaled(2_000, 200) as u64;

    print_header(&[
        "Shards",
        "Build (s)",
        "Mutate (s)",
        "QPS",
        "p50 (us)",
        "p99 (us)",
        "Epoch",
        "Max |Δscore|",
    ]);
    let mut points: Vec<ShardPoint> = Vec::new();
    let mut reference: Option<Rankings> = None;
    for shards in SHARD_COUNTS {
        let (mut point, rankings) = run_shards(
            &base,
            &measures,
            shards,
            delta_count,
            query_count,
            args.seed,
        );
        match &reference {
            None => reference = Some(rankings),
            Some(baseline) => point.max_abs_score_delta = max_delta(baseline, &rankings),
        }
        print_row(&[
            point.shards.to_string(),
            format!("{:.3}", point.build_s),
            format!("{:.3}", point.mutate_s),
            format!("{:.0}", point.qps),
            format!("{:.1}", point.p50_us),
            format!("{:.1}", point.p99_us),
            point.epoch.to_string(),
            format!("{:.3e}", point.max_abs_score_delta),
        ]);
        points.push(point);
    }

    let max_abs_score_delta = points
        .iter()
        .map(|p| p.max_abs_score_delta)
        .fold(0.0f64, f64::max);
    let pass = max_abs_score_delta <= EQUIVALENCE_EPS;
    println!(
        "\nHeadline: max merged-ranking deviation across shard counts: \
         {max_abs_score_delta:.3e} (target <= {EQUIVALENCE_EPS:.0e}: {})",
        if pass { "PASS" } else { "FAIL" }
    );

    let report = ShardReport {
        seed: args.seed,
        scale: args.scale,
        deltas: delta_count,
        equivalence_eps: EQUIVALENCE_EPS,
        points,
        max_abs_score_delta,
        pass,
    };
    write_bench_report("shard", &report);
}
