//! Example 3.6 — LCC and BC scores on the Figure 1 running example.
//!
//! The paper reports LCC(Jaguar) = 0.36 and BC(Jaguar) ≈ 0.025, well
//! separated from the repeated-but-unambiguous values Panda and Toyota. The
//! absolute numbers depend on normalization details; what must reproduce is
//! the separation: Jaguar (and Puma) stand out under BC, and Jaguar has the
//! lowest LCC among the repeated values.

use bench::{print_header, print_row, write_report};
use dn_graph::bc::normalize_scores;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ValueScores {
    value: String,
    lcc: f64,
    bc_raw: f64,
    bc_normalized: f64,
    is_homograph: bool,
}

fn main() {
    println!("== Example 3.6: running example (Figure 1) ==\n");
    let lake = lake::fixtures::running_example();
    let net = DomainNetBuilder::new()
        .prune_single_attribute_values(false)
        .build(&lake);

    let lcc = net.rank(Measure::lcc());
    let bc = net.rank(Measure::exact_bc());

    // Normalized BC for comparability with the paper's small numbers.
    let raw = net.raw_scores(Measure::exact_bc());
    let n = net.graph().node_count();
    let mut padded = raw.clone();
    padded.resize(n, 0.0);
    normalize_scores(&mut padded);

    let homographs = lake::fixtures::running_example_homographs();
    let mut rows = Vec::new();
    for value in ["JAGUAR", "PUMA", "PANDA", "TOYOTA"] {
        let lcc_score = lcc
            .iter()
            .find(|s| s.value == value)
            .map(|s| s.score)
            .unwrap_or(f64::NAN);
        let bc_entry = bc.iter().find(|s| s.value == value);
        let bc_raw = bc_entry.map(|s| s.score).unwrap_or(f64::NAN);
        let node = net
            .graph()
            .value_nodes()
            .find(|&v| net.value_label(v) == value)
            .expect("value present");
        rows.push(ValueScores {
            value: value.to_owned(),
            lcc: lcc_score,
            bc_raw,
            bc_normalized: padded[node as usize],
            is_homograph: homographs.contains(&value),
        });
    }

    print_header(&["Value", "LCC", "BC (raw)", "BC (normalized)", "Homograph?"]);
    for r in &rows {
        print_row(&[
            r.value.clone(),
            format!("{:.3}", r.lcc),
            format!("{:.3}", r.bc_raw),
            format!("{:.4}", r.bc_normalized),
            r.is_homograph.to_string(),
        ]);
    }

    println!("\nPaper: LCC Jaguar 0.36, Puma 0.43, Panda/Toyota ≈ 0.45-0.46;");
    println!("       BC  Jaguar 0.025, Puma 0.003, Panda/Toyota ≈ 0.002.");
    println!("Expected shape: Jaguar lowest LCC; Jaguar ≫ Puma > Panda/Toyota under BC.");

    write_report("running_example", &rows);
}
