//! Replica sweep: WAL-shipping replication cost & fidelity at 1/2/4
//! followers.
//!
//! A read-only follower (`dn_service::Follower`) bootstraps from the
//! primary's newest per-shard snapshots and then tails its per-shard WALs,
//! applying every committed batch through the same incremental path crash
//! recovery replays. This experiment measures what that buys and what it
//! costs: for followers ∈ {1, 2, 4} against the same durable sharded
//! primary on the same SB lake and seeded mutation stream, it reports
//! bootstrap time, the wall-clock of the mutate-and-tail phase, the worst
//! replication lag observed while tailing, and the *aggregate* merged-read
//! throughput of all followers reading concurrently — the scaling the
//! architecture exists for, reads fanning out across replicas while one
//! primary takes the writes.
//!
//! The acceptance gate is fidelity, not speed: at the end of every sweep
//! point each follower must agree with the primary **bit for bit** on
//! every ranking entry of both served measures, with zero divergences
//! flagged by the insurance exchange. The sweep is written to
//! `BENCH_replica.json` in the workspace root so the cost of the
//! replication layer is tracked per PR.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bench::{print_header, print_row, timed, write_bench_report, ExpArgs};
use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use dn_service::{
    serve_sharded_durable, CheckpointPolicy, Coordinator, Follower, LocalReplicaSource,
    ServiceConfig,
};
use domainnet::Measure;
use lake::delta::MutableLake;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const FOLLOWER_COUNTS: [usize; 3] = [1, 2, 4];
const SHARDS: usize = 2;

#[derive(Debug, Serialize)]
struct ReplicaPoint {
    followers: usize,
    bootstrap_s: f64,
    replicate_s: f64,
    applied_batches: u64,
    max_lag_epochs: u64,
    reads: u64,
    aggregate_qps: f64,
    bit_exact: bool,
    divergences: u64,
}

#[derive(Debug, Serialize)]
struct ReplicaReport {
    seed: u64,
    scale: f64,
    shards: usize,
    deltas: usize,
    points: Vec<ReplicaPoint>,
    pass: bool,
}

fn scratch_root() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp")
        .join(format!("dn_exp_replica_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bit-for-bit comparison of the merged rankings: same values in the same
/// order with identical raw score bits, for every served measure.
fn bit_exact(
    primary: &dn_service::MultiView,
    follower: &dn_service::MultiView,
    measures: &[Measure],
) -> bool {
    measures.iter().all(|&measure| {
        let (Some(p), Some(f)) = (
            primary.top_k(measure, usize::MAX),
            follower.top_k(measure, usize::MAX),
        ) else {
            return false;
        };
        p.len() == f.len()
            && p.iter()
                .zip(&f)
                .all(|(a, b)| a.value == b.value && a.score.to_bits() == b.score.to_bits())
    })
}

fn run_point(
    root: &Path,
    base: &MutableLake,
    measures: &[Measure],
    followers: usize,
    delta_count: usize,
    read_count: u64,
    seed: u64,
) -> ReplicaPoint {
    let config = ServiceConfig {
        measures: measures.to_vec(),
        cache_capacity: 64,
        prune_single_attribute_values: true,
        threads: 1,
    };
    let point_dir = root.join(format!("f{followers}"));
    let (handle, coordinator) = serve_sharded_durable(
        base.clone(),
        config.clone(),
        point_dir.join("primary"),
        CheckpointPolicy::every_epochs(4),
        SHARDS,
    )
    .expect("fresh durable primary");
    let primary: Arc<Mutex<Coordinator>> = Arc::new(Mutex::new(coordinator));
    let source = LocalReplicaSource::new(handle.clone(), Arc::clone(&primary));

    let (mut fleet, bootstrap_s) = timed(|| {
        (0..followers)
            .map(|i| {
                Follower::bootstrap(
                    point_dir.join(format!("follower_{i}")),
                    config.clone(),
                    CheckpointPolicy::manual(),
                    &source,
                )
                .expect("follower bootstraps")
            })
            .collect::<Vec<_>>()
    });

    // Mutate-and-tail: the primary takes the seeded write stream while
    // every follower tails after each commit; the lag each follower shows
    // *before* its sync is the real replication lag of this cadence.
    let mut stream = MutationStream::new(MutationConfig {
        seed: seed.wrapping_add(1),
        tables_per_delta: 2,
        rows_per_table: 40,
        ..MutationConfig::default()
    });
    let mut shadow = base.clone();
    let mut applied_batches = 0u64;
    let mut max_lag_epochs = 0u64;
    let ((), replicate_s) = timed(|| {
        for _ in 0..delta_count {
            let delta = stream.next_delta(&shadow);
            shadow.apply(&delta).expect("stream deltas apply");
            primary
                .lock()
                .unwrap()
                .apply_and_publish(delta)
                .expect("primary applies");
            let primary_epoch = handle.epoch();
            for follower in &mut fleet {
                max_lag_epochs =
                    max_lag_epochs.max(primary_epoch.saturating_sub(follower.handle().epoch()));
                let report = follower.sync_once(&source).expect("follower tails");
                applied_batches += report.applied_batches;
            }
        }
    });

    // Aggregate read throughput: every follower serves its own merged
    // top-k + score-card mix on its own thread, concurrently — the
    // fan-out reads the replication tier exists to absorb.
    let hot: Vec<String> = handle
        .current()
        .top_k(measures[0], 64)
        .expect("served measure")
        .iter()
        .map(|s| s.value.clone())
        .collect();
    let reads_per_follower = read_count / followers.max(1) as u64;
    let wall = Instant::now();
    let total_reads: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = fleet
            .iter()
            .enumerate()
            .map(|(i, follower)| {
                let view_handle = follower.handle();
                let hot = &hot;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x5AD + i as u64));
                    let ks = [10usize, 20, 50];
                    for _ in 0..reads_per_follower {
                        let view = view_handle.current();
                        let measure = measures[rng.gen_range(0..measures.len())];
                        if rng.gen_range(0..100u32) < 60 {
                            let _ = view.top_k(measure, ks[rng.gen_range(0..ks.len())]);
                        } else {
                            let _ = view.score_card(measure, &hot[rng.gen_range(0..hot.len())]);
                        }
                    }
                    reads_per_follower
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("reader")).sum()
    });
    let read_wall_s = wall.elapsed().as_secs_f64();

    // Fidelity gate: every follower bit-identical to the primary, no
    // divergences flagged on the way.
    let primary_view = handle.current();
    let mut all_bit_exact = true;
    let mut divergences = 0u64;
    for follower in &mut fleet {
        let report = follower.sync_once(&source).expect("final drain");
        debug_assert_eq!(report.lag_epochs, 0);
        divergences += follower.shared().divergence_total();
        all_bit_exact &= bit_exact(&primary_view, &follower.handle().current(), measures);
    }

    ReplicaPoint {
        followers,
        bootstrap_s,
        replicate_s,
        applied_batches,
        max_lag_epochs,
        reads: total_reads,
        aggregate_qps: total_reads as f64 / read_wall_s.max(1e-9),
        bit_exact: all_bit_exact,
        divergences,
    }
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Replica sweep: WAL-shipping cost & fidelity at 1/2/4 followers ==\n");

    let sb = SbGenerator::with_config(SbConfig {
        seed: args.seed,
        rows_per_table: args.scaled(200, 60),
    })
    .generate();
    let base = MutableLake::from_catalog(&sb.catalog);
    // Exact measures: the headline is bit-for-bit agreement, so estimation
    // noise has no place here (lockstep approx BC is covered by the
    // replication property suite).
    let measures = [Measure::lcc(), Measure::exact_bc()];
    let delta_count = args.scaled(12, 4);
    let read_count = args.scaled(4_000, 400) as u64;
    let root = scratch_root();

    print_header(&[
        "Followers",
        "Bootstrap (s)",
        "Replicate (s)",
        "Batches",
        "Max lag",
        "Agg QPS",
        "Bit-exact",
        "Divergences",
    ]);
    let mut points: Vec<ReplicaPoint> = Vec::new();
    for followers in FOLLOWER_COUNTS {
        let point = run_point(
            &root,
            &base,
            &measures,
            followers,
            delta_count,
            read_count,
            args.seed,
        );
        print_row(&[
            point.followers.to_string(),
            format!("{:.3}", point.bootstrap_s),
            format!("{:.3}", point.replicate_s),
            point.applied_batches.to_string(),
            point.max_lag_epochs.to_string(),
            format!("{:.0}", point.aggregate_qps),
            point.bit_exact.to_string(),
            point.divergences.to_string(),
        ]);
        points.push(point);
    }

    let pass = points.iter().all(|p| p.bit_exact && p.divergences == 0);
    println!(
        "\nHeadline: every follower bit-identical to the primary with zero divergences: {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let report = ReplicaReport {
        seed: args.seed,
        scale: args.scale,
        shards: SHARDS,
        deltas: delta_count,
        points,
        pass,
    };
    write_bench_report("replica", &report);
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}
