//! Figure 9 and §5.4 — scalability: graph construction time, LCC time, and
//! approximate-BC runtime as a function of graph size.
//!
//! Paper: the TUS graph builds in ~1.5 min (dominated by scanning the input
//! tables), LCC takes ~4 s, approximate BC on 1 % of the nodes of the
//! 1.5 M-node NYC-education graph takes ~27 min, and runtime grows linearly
//! with the number of edges (Figure 9). The reproduced lake is smaller by
//! default (`--scale` grows it); the linear trend is what must reproduce.

use bench::{print_header, print_row, timed, write_report, ExpArgs};
use datagen::scale::{ScaleConfig, ScaleGenerator};
use dn_graph::approx_bc::{approximate_betweenness, ApproxBcConfig, SamplingStrategy};
use dn_graph::lcc::LccMethod;
use dn_graph::subgraph::random_attribute_subgraph;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ScalePoint {
    nodes: usize,
    edges: usize,
    bc_samples: usize,
    bc_seconds: f64,
}

#[derive(Debug, Serialize)]
struct Fig9Report {
    lake_values: usize,
    lake_attributes: usize,
    graph_nodes: usize,
    graph_edges: usize,
    graph_build_seconds: f64,
    lcc_attr_jaccard_seconds: f64,
    points: Vec<ScalePoint>,
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Figure 9 / §5.4: scalability ==\n");

    let config = ScaleConfig {
        seed: args.seed,
        ..ScaleConfig::default()
    }
    .scaled(args.scale);
    let (lake, gen_secs) = timed(|| ScaleGenerator::new(config).generate());
    println!(
        "Scale lake: {} tables, {} attributes, {} values (generated in {gen_secs:.1}s)",
        lake.table_count(),
        lake.attribute_count(),
        lake.value_count()
    );

    let (net, build_secs) = timed(|| DomainNetBuilder::new().build(&lake));
    println!(
        "Graph construction: {} nodes, {} edges in {build_secs:.2}s",
        net.graph().node_count(),
        net.edge_count()
    );

    // LCC timing (the scalable attribute-Jaccard variant, which is the one a
    // lake of this size would use).
    let (_, lcc_secs) = timed(|| net.raw_scores(Measure::Lcc(LccMethod::AttributeJaccard)));
    println!("LCC (attribute-Jaccard) over all candidates: {lcc_secs:.2}s\n");

    // Approximate BC on nested subgraphs of increasing size (Figure 9).
    let full_edges = net.edge_count();
    let mut points = Vec::new();
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    for &f in &fractions {
        let target = ((full_edges as f64) * f) as usize;
        let sub = if f >= 1.0 {
            net.graph().clone()
        } else {
            random_attribute_subgraph(net.graph(), target, args.seed)
        };
        let samples = ((sub.node_count() as f64 * 0.01).ceil() as usize).max(10);
        let (_, secs) = timed(|| {
            approximate_betweenness(
                &sub,
                ApproxBcConfig {
                    samples,
                    strategy: SamplingStrategy::Uniform,
                    seed: args.seed,
                },
                4,
            )
        });
        points.push(ScalePoint {
            nodes: sub.node_count(),
            edges: sub.edge_count(),
            bc_samples: samples,
            bc_seconds: secs,
        });
    }

    print_header(&["Nodes", "Edges", "BC samples (1%)", "BC time (s)"]);
    for p in &points {
        print_row(&[
            p.nodes.to_string(),
            p.edges.to_string(),
            p.bc_samples.to_string(),
            format!("{:.2}", p.bc_seconds),
        ]);
    }

    println!("\nPaper (Figure 9): approximate-BC runtime grows linearly with the number of");
    println!("edges at a fixed 1% sampling rate. §5.4: TUS graph built in ~1.5 min, LCC ~4 s,");
    println!("NYC-EDU (1.5M nodes / 2.3M edges) BC in ~27 min.");

    let report = Fig9Report {
        lake_values: lake.value_count(),
        lake_attributes: lake.attribute_count(),
        graph_nodes: net.graph().node_count(),
        graph_edges: net.edge_count(),
        graph_build_seconds: build_secs,
        lcc_attr_jaccard_seconds: lcc_secs,
        points,
    };
    write_report("fig9_scalability", &report);
}
