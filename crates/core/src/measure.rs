//! Homograph-scoring measures and scored results.

use dn_graph::approx_bc::ApproxBcConfig;
use dn_graph::lcc::LccMethod;
use serde::{Deserialize, Serialize};

/// A network-centrality measure used to score value nodes.
///
/// The paper evaluates two families (§3.3):
///
/// * **Local clustering coefficient** — cheap, purely local; homographs are
///   expected to have *low* LCC (Hypothesis 3.4). Figure 5 shows it is easily
///   fooled by small domains.
/// * **Betweenness centrality** — global; homographs are expected to have
///   *high* BC (Hypothesis 3.5). Exact BC is `O(n·m)`; the sampled
///   approximation brings the cost down to `O(s·m)` with no practical loss in
///   ranking quality (Figure 8).
///
/// `Measure` is `Eq + Hash` so rankings can be memoized per measure:
///
/// ```
/// use domainnet::Measure;
///
/// let lake = lake::fixtures::running_example();
/// let net = domainnet::DomainNetBuilder::new().build(&lake);
///
/// // Rankings sort so the most homograph-like value comes first: that
/// // means descending scores for BC, ascending for LCC.
/// assert!(Measure::exact_bc().higher_is_more_homograph_like());
/// assert!(!Measure::lcc().higher_is_more_homograph_like());
/// assert_eq!(net.rank(Measure::exact_bc())[0].value, "JAGUAR");
/// assert_eq!(net.rank(Measure::lcc()).len(), net.candidate_count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Measure {
    /// Bipartite local clustering coefficient (lower = more homograph-like).
    Lcc(LccMethod),
    /// Exact betweenness centrality (higher = more homograph-like).
    ExactBc,
    /// Approximate betweenness centrality via source sampling.
    ApproxBc(ApproxBcConfig),
}

impl Measure {
    /// Exact betweenness centrality.
    ///
    /// How many worker threads compute it is a **runtime** setting
    /// (`DomainNet::set_compute_threads` / `ServiceConfig::threads`), not
    /// part of the measure: a `Measure` is an identity — it keys memo
    /// caches, is persisted in snapshot manifests, and rides in replication
    /// digests — and scores are bit-identical for every thread count, so
    /// baking a thread count into the identity would only make equal
    /// rankings compare unequal across differently-sized hosts.
    pub fn exact_bc() -> Self {
        Measure::ExactBc
    }

    /// The paper's default LCC (the literal Equation 1).
    pub fn lcc() -> Self {
        Measure::Lcc(LccMethod::ValueNeighborJaccard)
    }

    /// Approximate BC with the given sample count and seed.
    pub fn approx_bc(samples: usize, seed: u64) -> Self {
        Measure::ApproxBc(ApproxBcConfig {
            samples,
            seed,
            ..ApproxBcConfig::default()
        })
    }

    /// Whether larger scores mean "more homograph-like" for this measure.
    pub fn higher_is_more_homograph_like(&self) -> bool {
        !matches!(self, Measure::Lcc(_))
    }

    /// A short human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Lcc(LccMethod::ValueNeighborJaccard) => "LCC",
            Measure::Lcc(LccMethod::AttributeJaccard) => "LCC(attr)",
            Measure::ExactBc => "BC",
            Measure::ApproxBc(_) => "BC(approx)",
        }
    }
}

/// A value together with its homograph score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredValue {
    /// The normalized data value.
    pub value: String,
    /// The raw measure score (interpretation depends on the measure).
    pub score: f64,
    /// Number of attributes the value occurs in.
    pub attribute_count: usize,
    /// The value-node cardinality |N(v)| (number of co-occurring values).
    pub cardinality: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_direction() {
        assert!(Measure::exact_bc().higher_is_more_homograph_like());
        assert!(Measure::approx_bc(100, 1).higher_is_more_homograph_like());
        assert!(!Measure::lcc().higher_is_more_homograph_like());
    }

    #[test]
    fn measure_names_are_distinct() {
        let names = [
            Measure::lcc().name(),
            Measure::Lcc(LccMethod::AttributeJaccard).name(),
            Measure::exact_bc().name(),
            Measure::approx_bc(10, 0).name(),
        ];
        let unique: std::collections::HashSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn serde_round_trip() {
        let m = Measure::approx_bc(5000, 17);
        let json = serde_json::to_string(&m).unwrap();
        let back: Measure = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
