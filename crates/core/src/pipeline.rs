//! The end-to-end DomainNet pipeline: lake → bipartite graph → scores → rank.

use dn_graph::approx_bc::approximate_betweenness;
use dn_graph::bc::{betweenness_centrality, betweenness_centrality_parallel};
use dn_graph::bipartite::{BipartiteBuilder, BipartiteGraph};
use dn_graph::lcc::lcc_for_values;
use lake::catalog::LakeCatalog;

use crate::measure::{Measure, ScoredValue};

/// Options controlling how the DomainNet graph is built from a lake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DomainNetConfig {
    /// Remove values that occur in only one attribute before building the
    /// graph. Such values cannot be homographs, and pruning them shrinks the
    /// graph (≈3 % fewer nodes on TUS, ≈30 % on SB per §5) without affecting
    /// which values can be returned. Defaults to `true`.
    pub prune_single_attribute_values: bool,
    /// Skip attributes that end up with no candidate values (only meaningful
    /// when pruning is enabled). Defaults to `true`.
    pub drop_empty_attributes: bool,
}

impl Default for DomainNetConfig {
    fn default() -> Self {
        DomainNetConfig {
            prune_single_attribute_values: true,
            drop_empty_attributes: true,
        }
    }
}

/// Builder for [`DomainNet`].
///
/// ```
/// let lake = lake::fixtures::running_example();
/// let net = domainnet::DomainNetBuilder::new().build(&lake);
/// assert_eq!(net.candidate_count(), 4); // Jaguar, Puma, Panda, Toyota
/// ```
#[derive(Debug, Clone, Default)]
pub struct DomainNetBuilder {
    config: DomainNetConfig,
}

impl DomainNetBuilder {
    /// Create a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set whether single-attribute values are pruned from the graph.
    pub fn prune_single_attribute_values(mut self, prune: bool) -> Self {
        self.config.prune_single_attribute_values = prune;
        self
    }

    /// Set whether attributes with no surviving values are dropped.
    pub fn drop_empty_attributes(mut self, drop: bool) -> Self {
        self.config.drop_empty_attributes = drop;
        self
    }

    /// Build the DomainNet graph from a lake catalog.
    pub fn build(&self, lake: &LakeCatalog) -> DomainNet {
        let min_attrs = if self.config.prune_single_attribute_values {
            2
        } else {
            1
        };

        // Map surviving lake values to dense graph node ids, in ValueId order
        // so the construction is deterministic.
        let kept_values = lake.values_in_at_least(min_attrs);
        let mut node_of_value = vec![u32::MAX; lake.value_count()];
        let mut builder = BipartiteBuilder::with_capacity(
            kept_values.len(),
            lake.attribute_count(),
            lake.incidence_count(),
        );
        for &vid in &kept_values {
            let label = lake.value(vid).expect("value id from catalog");
            node_of_value[vid.index()] = builder.add_value(label);
        }
        for (attr, values) in lake.attribute_value_pairs() {
            let surviving: Vec<u32> = values
                .iter()
                .filter_map(|v| {
                    let node = node_of_value[v.index()];
                    (node != u32::MAX).then_some(node)
                })
                .collect();
            if surviving.is_empty() && self.config.drop_empty_attributes {
                continue;
            }
            let label = lake
                .attribute_ref(attr)
                .map(|r| r.qualified())
                .unwrap_or_else(|| format!("attr_{}", attr.0));
            let attr_node = builder.add_attribute(label);
            for node in surviving {
                builder.add_edge(node, attr_node);
            }
        }

        DomainNet {
            config: self.config,
            graph: builder.build(),
        }
    }
}

/// The DomainNet model of a data lake: the bipartite graph plus scoring and
/// ranking on top of it.
#[derive(Debug, Clone)]
pub struct DomainNet {
    config: DomainNetConfig,
    graph: BipartiteGraph,
}

impl DomainNet {
    /// The underlying bipartite graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> DomainNetConfig {
        self.config
    }

    /// Number of candidate value nodes in the graph.
    pub fn candidate_count(&self) -> usize {
        self.graph.value_count()
    }

    /// Number of attribute nodes in the graph.
    pub fn attribute_count(&self) -> usize {
        self.graph.attribute_count()
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The normalized value behind a value node id.
    pub fn value_label(&self, node: u32) -> &str {
        self.graph.value_label(node)
    }

    /// Compute the raw score of every value node under a measure, indexed by
    /// value node id (no sorting, no direction adjustment).
    pub fn raw_scores(&self, measure: Measure) -> Vec<f64> {
        match measure {
            Measure::Lcc(method) => {
                let targets: Vec<u32> = self.graph.value_nodes().collect();
                lcc_for_values(&self.graph, &targets, method)
            }
            Measure::ExactBc { threads } => {
                let all = if threads <= 1 {
                    betweenness_centrality(&self.graph)
                } else {
                    betweenness_centrality_parallel(&self.graph, threads)
                };
                all[..self.graph.value_count()].to_vec()
            }
            Measure::ApproxBc(config) => {
                let all = approximate_betweenness(&self.graph, config);
                all[..self.graph.value_count()].to_vec()
            }
        }
    }

    /// Score every candidate value and return them ranked most-homograph-like
    /// first (descending BC, ascending LCC). Ties are broken by value string
    /// so the output is fully deterministic.
    pub fn rank(&self, measure: Measure) -> Vec<ScoredValue> {
        let scores = self.raw_scores(measure);
        let mut ranked: Vec<ScoredValue> = self
            .graph
            .value_nodes()
            .map(|node| ScoredValue {
                value: self.graph.value_label(node).to_owned(),
                score: scores[node as usize],
                attribute_count: self.graph.value_attribute_count(node),
                cardinality: self.graph.value_neighbor_count(node),
            })
            .collect();
        let higher_first = measure.higher_is_more_homograph_like();
        ranked.sort_by(|a, b| {
            let primary = if higher_first {
                b.score.total_cmp(&a.score)
            } else {
                a.score.total_cmp(&b.score)
            };
            primary.then_with(|| a.value.cmp(&b.value))
        });
        ranked
    }

    /// Convenience: the top-`k` ranked values under a measure.
    pub fn top_k(&self, measure: Measure, k: usize) -> Vec<ScoredValue> {
        let mut ranked = self.rank(measure);
        ranked.truncate(k);
        ranked
    }

    /// Look up the score of a specific (normalized) value in a ranking.
    pub fn score_of<'a>(ranked: &'a [ScoredValue], value: &str) -> Option<&'a ScoredValue> {
        ranked.iter().find(|s| s.value == value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Measure;
    use dn_graph::lcc::LccMethod;

    fn running_example_net(prune: bool) -> DomainNet {
        let lake = lake::fixtures::running_example();
        DomainNetBuilder::new()
            .prune_single_attribute_values(prune)
            .build(&lake)
    }

    #[test]
    fn pruned_graph_keeps_only_candidates() {
        let net = running_example_net(true);
        // Only Jaguar, Puma, Panda, Toyota repeat across attributes.
        assert_eq!(net.candidate_count(), 4);
        // Attributes that lose all their values are dropped (e.g. numeric
        // columns whose values are unique).
        assert!(net.attribute_count() <= 12);
        net.graph().validate().unwrap();
    }

    #[test]
    fn unpruned_graph_keeps_every_value_and_attribute() {
        let lake = lake::fixtures::running_example();
        let net = running_example_net(false);
        assert_eq!(net.candidate_count(), lake.value_count());
        assert_eq!(net.attribute_count(), lake.attribute_count());
        assert_eq!(net.edge_count(), lake.incidence_count());
    }

    #[test]
    fn bc_ranks_jaguar_first_on_the_running_example() {
        // Example 3.6: BC separates Jaguar and Puma from Panda and Toyota.
        let net = running_example_net(false);
        let ranked = net.rank(Measure::exact_bc());
        assert_eq!(ranked[0].value, "JAGUAR");
        let jaguar = DomainNet::score_of(&ranked, "JAGUAR").unwrap().score;
        let puma = DomainNet::score_of(&ranked, "PUMA").unwrap().score;
        let panda = DomainNet::score_of(&ranked, "PANDA").unwrap().score;
        let toyota = DomainNet::score_of(&ranked, "TOYOTA").unwrap().score;
        assert!(jaguar > puma);
        assert!(jaguar > panda && jaguar > toyota);
        assert!(puma > 0.0);
    }

    #[test]
    fn lcc_ranks_jaguar_below_unambiguous_repeats() {
        // Example 3.6 reports LCC(Jaguar) = 0.36 below the repeated-but-
        // unambiguous values (Panda, Toyota ≈ 0.45). Only the ordering of
        // Jaguar is robust to small definitional details (the paper itself
        // notes this example barely separates LCC ranks), so that is what we
        // assert: the four-meaning homograph has the lowest LCC of the
        // repeated values.
        let net = running_example_net(false);
        let ranked = net.rank(Measure::lcc());
        let jaguar = DomainNet::score_of(&ranked, "JAGUAR").unwrap().score;
        let puma = DomainNet::score_of(&ranked, "PUMA").unwrap().score;
        let panda = DomainNet::score_of(&ranked, "PANDA").unwrap().score;
        let toyota = DomainNet::score_of(&ranked, "TOYOTA").unwrap().score;
        assert!(jaguar < panda && jaguar < toyota);
        assert!(jaguar < puma);
        // All LCC scores are proper clustering coefficients.
        for score in [jaguar, puma, panda, toyota] {
            assert!((0.0..=1.0).contains(&score));
        }
    }

    #[test]
    fn exact_and_parallel_bc_rank_identically() {
        let net = running_example_net(false);
        let seq = net.rank(Measure::exact_bc());
        let par = net.rank(Measure::exact_bc_parallel(4));
        let seq_values: Vec<&str> = seq.iter().map(|s| s.value.as_str()).collect();
        let par_values: Vec<&str> = par.iter().map(|s| s.value.as_str()).collect();
        assert_eq!(seq_values, par_values);
    }

    #[test]
    fn approx_bc_with_full_samples_matches_exact_ranking() {
        let net = running_example_net(false);
        let exact = net.rank(Measure::exact_bc());
        let n = net.graph().node_count();
        let approx = net.rank(Measure::approx_bc(n, 3));
        assert_eq!(exact[0].value, approx[0].value);
        // Scores agree, not just the ranking.
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e.score - a.score).abs() < 1e-6);
        }
    }

    #[test]
    fn attribute_jaccard_lcc_is_also_available() {
        let net = running_example_net(false);
        let ranked = net.rank(Measure::Lcc(LccMethod::AttributeJaccard));
        assert_eq!(ranked.len(), net.candidate_count());
        for s in &ranked {
            assert!((0.0..=1.0).contains(&s.score));
        }
    }

    #[test]
    fn top_k_truncates_and_scored_values_carry_metadata() {
        let net = running_example_net(true);
        let top = net.top_k(Measure::exact_bc(), 2);
        assert_eq!(top.len(), 2);
        let jaguar = &top[0];
        assert_eq!(jaguar.value, "JAGUAR");
        assert_eq!(jaguar.attribute_count, 4);
        assert!(jaguar.cardinality >= 3);
    }

    #[test]
    fn ranking_is_deterministic() {
        let net = running_example_net(false);
        let a = net.rank(Measure::exact_bc());
        let b = net.rank(Measure::exact_bc());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_lake_produces_empty_model() {
        let lake = lake::catalog::LakeCatalog::new();
        let net = DomainNetBuilder::new().build(&lake);
        assert_eq!(net.candidate_count(), 0);
        assert!(net.rank(Measure::exact_bc()).is_empty());
        assert!(net.rank(Measure::lcc()).is_empty());
    }
}
