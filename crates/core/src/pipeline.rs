//! The end-to-end DomainNet pipeline: lake → bipartite graph → scores → rank.
//!
//! Two usage modes share one type:
//!
//! * **Snapshot mode** — [`DomainNetBuilder::build`] over any
//!   [`LakeView`] (an immutable [`lake::LakeCatalog`] or a
//!   [`lake::MutableLake`]) produces a [`DomainNet`] whose rankings are
//!   memoized per [`Measure`].
//! * **Incremental mode** — for a [`lake::MutableLake`], applying a
//!   [`lake::LakeDelta`] to the lake yields [`lake::DeltaEffects`], which
//!   [`DomainNet::apply_delta`] consumes to *patch* the graph and every
//!   cached score vector instead of recomputing from scratch: local
//!   clustering coefficients are recomputed only for the dirty 2-hop region,
//!   and betweenness centrality only for the connected components the
//!   mutation touched (exactly for [`Measure::ExactBc`]; by sampled
//!   re-estimation for [`Measure::ApproxBc`]).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dn_graph::approx_bc::{approximate_betweenness, approximate_betweenness_within};
use dn_graph::bc::{betweenness_centrality_parallel, betweenness_from_sources};
use dn_graph::bipartite::{BipartiteBuilder, BipartiteGraph};
use dn_graph::components::{connected_components, Components};
use dn_graph::delta::GraphDelta;
use dn_graph::lcc::{
    lcc_for_values, lcc_with_cardinality_for_values, patch_lcc_value_neighbors, LccMethod,
};
use lake::catalog::AttrId;
use lake::delta::{diff_sorted, DeltaEffects, LakeView, MutableLake};
use lake::value::ValueId;

use crate::measure::{Measure, ScoredValue};

/// Options controlling how the DomainNet graph is built from a lake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DomainNetConfig {
    /// Remove values that occur in only one attribute before building the
    /// graph. Such values cannot be homographs, and pruning them shrinks the
    /// graph (≈3 % fewer nodes on TUS, ≈30 % on SB per §5) without affecting
    /// which values can be returned. Defaults to `true`.
    pub prune_single_attribute_values: bool,
    /// Skip attributes that end up with no candidate values (only meaningful
    /// when pruning is enabled). Defaults to `true`.
    pub drop_empty_attributes: bool,
}

impl Default for DomainNetConfig {
    fn default() -> Self {
        DomainNetConfig {
            prune_single_attribute_values: true,
            drop_empty_attributes: true,
        }
    }
}

/// Builder for [`DomainNet`].
///
/// ```
/// let lake = lake::fixtures::running_example();
/// let net = domainnet::DomainNetBuilder::new().build(&lake);
/// assert_eq!(net.candidate_count(), 4); // Jaguar, Puma, Panda, Toyota
/// ```
#[derive(Debug, Clone, Default)]
pub struct DomainNetBuilder {
    config: DomainNetConfig,
}

impl DomainNetBuilder {
    /// Create a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set whether single-attribute values are pruned from the graph.
    pub fn prune_single_attribute_values(mut self, prune: bool) -> Self {
        self.config.prune_single_attribute_values = prune;
        self
    }

    /// Set whether attributes with no surviving values are dropped.
    pub fn drop_empty_attributes(mut self, drop: bool) -> Self {
        self.config.drop_empty_attributes = drop;
        self
    }

    /// Build the DomainNet graph from any lake view (an immutable
    /// [`lake::LakeCatalog`] or a [`lake::MutableLake`]).
    pub fn build<L: LakeView + ?Sized>(&self, lake: &L) -> DomainNet {
        let min_attrs = if self.config.prune_single_attribute_values {
            2
        } else {
            1
        };

        // Map surviving lake values to dense graph node ids, in ValueId order
        // so the construction is deterministic.
        let kept_values = lake.values_in_at_least(min_attrs);
        let mut node_of_value = vec![u32::MAX; lake.value_count()];
        let mut builder = BipartiteBuilder::with_capacity(
            kept_values.len(),
            lake.attribute_count(),
            lake.incidence_count(),
        );
        for &vid in &kept_values {
            let label = lake.value(vid).expect("value id from lake");
            node_of_value[vid.index()] = builder.add_value(label);
        }
        let mut attr_index_of = vec![u32::MAX; lake.attribute_count()];
        let mut attr_id_of_index: Vec<AttrId> = Vec::new();
        for (attr, values) in lake.live_attribute_values() {
            let surviving: Vec<u32> = values
                .iter()
                .filter_map(|v| {
                    let node = node_of_value[v.index()];
                    (node != u32::MAX).then_some(node)
                })
                .collect();
            if surviving.is_empty() && self.config.drop_empty_attributes {
                continue;
            }
            let label = lake
                .attribute_ref(attr)
                .map(|r| r.qualified())
                .unwrap_or_else(|| format!("attr_{}", attr.0));
            let attr_node = builder.add_attribute(label);
            attr_index_of[attr.index()] = attr_node;
            attr_id_of_index.push(attr);
            for node in surviving {
                builder.add_edge(node, attr_node);
            }
        }

        let graph = builder.build();
        let components = connected_components(&graph);
        DomainNet {
            config: self.config,
            graph,
            components,
            node_of_value,
            attr_index_of,
            attr_id_of_index,
            generation: 0,
            compute_threads: 1,
            caches: Mutex::new(ScoreCaches::default()),
        }
    }
}

/// Memoized per-measure scores. `raw` is indexed by value node id; `ranked`
/// is the fully sorted ranking. Both are invalidated or patched by
/// [`DomainNet::apply_delta`] and rebuilt lazily on demand.
#[derive(Debug, Default)]
struct ScoreCaches {
    raw: HashMap<Measure, Vec<f64>>,
    ranked: HashMap<Measure, Arc<Vec<ScoredValue>>>,
    /// `(attribute_count, cardinality)` per value node. Computing `|N(v)|`
    /// for every node costs as much as an LCC pass, so it is cached once and
    /// then patched only for dirty nodes on each delta.
    meta: Option<Vec<(usize, usize)>>,
}

/// Summary of one incremental maintenance step, returned by
/// [`DomainNet::apply_delta`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DeltaStats {
    /// Value nodes appended to the graph.
    pub value_nodes_added: usize,
    /// Attribute nodes appended to the graph.
    pub attr_nodes_added: usize,
    /// Edges inserted.
    pub edges_added: usize,
    /// Edges deleted.
    pub edges_removed: usize,
    /// Value nodes whose LCC had to be recomputed (the dirty 2-hop region).
    pub dirty_values: usize,
    /// Connected components whose BC had to be recomputed.
    pub touched_components: usize,
    /// Total nodes inside the touched components.
    pub touched_component_nodes: usize,
}

/// The DomainNet model of a data lake: the bipartite graph plus scoring and
/// ranking on top of it, with per-measure memoization and incremental
/// maintenance under lake mutations.
#[derive(Debug)]
pub struct DomainNet {
    config: DomainNetConfig,
    graph: BipartiteGraph,
    components: Components,
    /// ValueId -> value node id (`u32::MAX` = no node yet).
    node_of_value: Vec<u32>,
    /// AttrId -> attribute index in the graph (`u32::MAX` = no node yet).
    attr_index_of: Vec<u32>,
    /// Attribute index -> AttrId (inverse of `attr_index_of`). Not sorted:
    /// the initial build allocates indexes in AttrId order, but deltas append
    /// attributes in encounter order.
    attr_id_of_index: Vec<AttrId>,
    /// Bumped once per applied delta; salts the approximate-BC re-estimation
    /// seed so successive re-estimations are independent but deterministic.
    generation: u64,
    /// How many worker threads score computations may use. Runtime state,
    /// **not** identity: it is never persisted (snapshots from an 8-way host
    /// recover cleanly on a 1-way host) and scores are bit-identical for
    /// every width, so it deliberately lives outside [`NetState`].
    compute_threads: usize,
    caches: Mutex<ScoreCaches>,
}

impl Clone for DomainNet {
    fn clone(&self) -> Self {
        let caches = self.caches.lock().expect("score cache mutex");
        DomainNet {
            config: self.config,
            graph: self.graph.clone(),
            components: self.components.clone(),
            node_of_value: self.node_of_value.clone(),
            attr_index_of: self.attr_index_of.clone(),
            attr_id_of_index: self.attr_id_of_index.clone(),
            generation: self.generation,
            compute_threads: self.compute_threads,
            caches: Mutex::new(ScoreCaches {
                raw: caches.raw.clone(),
                ranked: caches.ranked.clone(),
                meta: caches.meta.clone(),
            }),
        }
    }
}

impl DomainNet {
    /// The underlying bipartite graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Set how many worker threads score computations may use (clamped to at
    /// least 1). Purely a runtime knob: every width yields bit-identical
    /// scores, so changing it never invalidates memoized rankings.
    pub fn set_compute_threads(&mut self, threads: usize) {
        self.compute_threads = threads.max(1);
    }

    /// The configured compute width (see [`DomainNet::set_compute_threads`]).
    pub fn compute_threads(&self) -> usize {
        self.compute_threads
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> DomainNetConfig {
        self.config
    }

    /// Connected components of the current graph (maintained incrementally
    /// across [`DomainNet::apply_delta`] calls).
    pub fn components(&self) -> &Components {
        &self.components
    }

    /// Number of value-node slots in the graph, **including** tombstones
    /// left behind by mutations (values that no longer qualify keep an
    /// isolated node). Equals the candidate count for a freshly built net.
    pub fn candidate_count(&self) -> usize {
        self.graph.value_count()
    }

    /// Number of *live* candidate values: value nodes with at least one
    /// incident edge. This is the number of entries [`DomainNet::rank`]
    /// returns.
    pub fn live_candidate_count(&self) -> usize {
        self.graph
            .value_nodes()
            .filter(|&v| self.graph.degree(v) > 0)
            .count()
    }

    /// Number of attribute nodes in the graph (including tombstones).
    pub fn attribute_count(&self) -> usize {
        self.graph.attribute_count()
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The normalized value behind a value node id.
    pub fn value_label(&self, node: u32) -> &str {
        self.graph.value_label(node)
    }

    /// The graph value node of a lake value, if it currently has one.
    pub fn node_of_value(&self, id: ValueId) -> Option<u32> {
        match self.node_of_value.get(id.index()) {
            Some(&node) if node != u32::MAX => Some(node),
            _ => None,
        }
    }

    /// Compute (or fetch from the memo) the raw score of every value node
    /// under a measure, indexed by value node id (no sorting, no direction
    /// adjustment). Tombstoned value nodes score 0.
    pub fn raw_scores(&self, measure: Measure) -> Vec<f64> {
        if let Some(cached) = self
            .caches
            .lock()
            .expect("score cache mutex")
            .raw
            .get(&measure)
        {
            return cached.clone();
        }
        let scores = self.compute_raw_scores(measure);
        self.caches
            .lock()
            .expect("score cache mutex")
            .raw
            .insert(measure, scores.clone());
        scores
    }

    fn compute_raw_scores(&self, measure: Measure) -> Vec<f64> {
        let _compute = dn_trace::span_labeled(dn_trace::Phase::MeasureCompute, measure.name());
        match measure {
            Measure::Lcc(method) => {
                let targets: Vec<u32> = self.graph.value_nodes().collect();
                lcc_for_values(&self.graph, &targets, method)
            }
            Measure::ExactBc => {
                let all = betweenness_centrality_parallel(&self.graph, self.compute_threads);
                all[..self.graph.value_count()].to_vec()
            }
            Measure::ApproxBc(config) => {
                let all = approximate_betweenness(&self.graph, config, self.compute_threads);
                all[..self.graph.value_count()].to_vec()
            }
        }
    }

    /// Score every live candidate value and return them ranked
    /// most-homograph-like first (descending BC, ascending LCC). Ties are
    /// broken by value string so the output is fully deterministic.
    ///
    /// Results are memoized per measure: repeated calls return a clone of
    /// the cached ranking without re-scoring or re-sorting. The memo is
    /// patched by [`DomainNet::apply_delta`] and cleared by
    /// [`DomainNet::refresh`]. Use [`DomainNet::rank_shared`] to avoid even
    /// the clone.
    pub fn rank(&self, measure: Measure) -> Vec<ScoredValue> {
        self.rank_shared(measure).as_ref().clone()
    }

    /// Like [`DomainNet::rank`] but returns the shared cached ranking
    /// without copying it.
    pub fn rank_shared(&self, measure: Measure) -> Arc<Vec<ScoredValue>> {
        if let Some(cached) = self
            .caches
            .lock()
            .expect("score cache mutex")
            .ranked
            .get(&measure)
        {
            return Arc::clone(cached);
        }
        let scores = self.raw_scores(measure);
        let meta = self.node_meta();
        let mut ranked: Vec<ScoredValue> = self
            .graph
            .value_nodes()
            .filter(|&node| self.graph.degree(node) > 0)
            .map(|node| {
                let (attribute_count, cardinality) = meta[node as usize];
                ScoredValue {
                    value: self.graph.value_label(node).to_owned(),
                    score: scores[node as usize],
                    attribute_count,
                    cardinality,
                }
            })
            .collect();
        let higher_first = measure.higher_is_more_homograph_like();
        ranked.sort_by(|a, b| {
            let primary = if higher_first {
                b.score.total_cmp(&a.score)
            } else {
                a.score.total_cmp(&b.score)
            };
            primary.then_with(|| a.value.cmp(&b.value))
        });
        let ranked = Arc::new(ranked);
        self.caches
            .lock()
            .expect("score cache mutex")
            .ranked
            .insert(measure, Arc::clone(&ranked));
        ranked
    }

    /// The cached `(attribute_count, cardinality)` table, computed on first
    /// use and patched (not recomputed) across deltas.
    fn node_meta(&self) -> Vec<(usize, usize)> {
        if let Some(meta) = &self.caches.lock().expect("score cache mutex").meta {
            return meta.clone();
        }
        let meta: Vec<(usize, usize)> = self
            .graph
            .value_nodes()
            .map(|node| {
                (
                    self.graph.value_attribute_count(node),
                    self.graph.value_neighbor_count(node),
                )
            })
            .collect();
        self.caches.lock().expect("score cache mutex").meta = Some(meta.clone());
        meta
    }

    /// Convenience: the top-`k` ranked values under a measure.
    pub fn top_k(&self, measure: Measure, k: usize) -> Vec<ScoredValue> {
        let ranked = self.rank_shared(measure);
        ranked.iter().take(k).cloned().collect()
    }

    /// The number of deltas folded into this net since it was built (0 for
    /// a fresh build). Snapshot consumers use this to tag extracted state.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The lake [`AttrId`] behind a graph attribute *index* (the inverse of
    /// the mapping the builder and the delta path maintain). Snapshot
    /// consumers use this to recover structured `table`/`column` references
    /// from the lake instead of re-parsing the flattened display label.
    pub fn attr_id_of_index(&self, attr_index: u32) -> Option<AttrId> {
        self.attr_id_of_index.get(attr_index as usize).copied()
    }

    /// Force the memoized ranking of every listed measure to exist.
    ///
    /// The serving layer calls this on the writer thread right after a
    /// delta is applied, so that snapshot extraction — and every reader
    /// query after it — only ever *clones `Arc`s* out of the memo instead
    /// of paying a scoring pass at query time.
    pub fn warm_rankings(&self, measures: &[Measure]) {
        for &measure in measures {
            let _ = self.rank_shared(measure);
        }
    }

    /// Look up the score of a specific (normalized) value in a ranking.
    pub fn score_of<'a>(ranked: &'a [ScoredValue], value: &str) -> Option<&'a ScoredValue> {
        ranked.iter().find(|s| s.value == value)
    }

    // ------------------------------------------------------------------
    // Incremental maintenance
    // ------------------------------------------------------------------

    /// Incrementally fold a lake mutation into the model.
    ///
    /// `lake` must be the same [`MutableLake`] this net was built from (or
    /// last refreshed against), **after** the delta was applied to it, and
    /// `effects` must be the effects record that application returned. The
    /// bipartite graph is patched in `O(n + m + |Δ|)`, connected components
    /// are updated incrementally, and every memoized measure is repaired:
    ///
    /// * **LCC** — recomputed only for value nodes whose 2-hop neighborhood
    ///   changed; the result is identical to a from-scratch computation.
    /// * **Exact BC** — recomputed only over the touched connected
    ///   components (betweenness never crosses components, so this too is
    ///   exact).
    /// * **Approximate BC** — re-estimated by sampling inside the touched
    ///   components, with a generation-salted seed for determinism.
    ///
    /// Cached rankings are invalidated and rebuilt lazily from the patched
    /// score vectors on the next [`DomainNet::rank`] call.
    ///
    /// Values that stop qualifying (e.g. pruning is on and a value drops to
    /// one attribute) keep a tombstoned, isolated node: rankings exclude
    /// them and they influence no score, so live results match a fresh
    /// build of the mutated lake.
    ///
    /// # Errors
    /// Returns a description of the inconsistency if `effects` does not
    /// match this net's view of the lake (e.g. it was already applied, or
    /// came from a different lake). On error the net is left **unchanged**:
    /// all mapping updates are staged locally and committed only after the
    /// graph patch succeeds.
    pub fn apply_delta(
        &mut self,
        lake: &MutableLake,
        effects: &DeltaEffects,
    ) -> Result<DeltaStats, String> {
        let min_attrs = if self.config.prune_single_attribute_values {
            2
        } else {
            1
        };
        if self.node_of_value.len() < lake.value_count() {
            self.node_of_value.resize(lake.value_count(), u32::MAX);
        }
        if self.attr_index_of.len() < lake.attribute_count() {
            self.attr_index_of.resize(lake.attribute_count(), u32::MAX);
        }

        // Values whose live incidence set changed.
        let mut affected: Vec<ValueId> = effects
            .added_incidences
            .iter()
            .chain(effects.removed_incidences.iter())
            .map(|&(_, v)| v)
            .collect();
        affected.sort_unstable();
        affected.dedup();

        // Translate lake-level effects into a graph-level edge delta. All
        // node/attribute allocations are staged in `pending` so a failed
        // translation (or graph patch) leaves `self` untouched.
        let mut pending = PendingDelta::default();
        let old_value_count = self.graph.value_count() as u32;
        for &vid in &affected {
            if vid.index() >= self.node_of_value.len() {
                return Err(format!(
                    "effects reference value {} outside the lake's id space",
                    vid.0
                ));
            }
            let live_attrs = lake.value_attributes(vid);
            let candidate = live_attrs.len() >= min_attrs;
            let desired: &[AttrId] = if candidate { live_attrs } else { &[] };
            let original_node = self.node_of_value[vid.index()];
            // Current edges of the node as sorted AttrIds. The index->id
            // mapping is not monotone (attrs appended by earlier deltas are
            // allocated in encounter order), so sort after translating.
            let current: Vec<AttrId> = if original_node == u32::MAX {
                Vec::new()
            } else {
                let mut attrs: Vec<AttrId> = self
                    .graph
                    .neighbors(original_node)
                    .iter()
                    .map(|&a| self.attr_id_of_index[(a - old_value_count) as usize])
                    .collect();
                attrs.sort_unstable();
                attrs
            };
            let (removed, added) = diff_sorted(&current, desired);
            for attr in removed {
                self.push_edge_removal(&mut pending, original_node, attr)?;
            }
            let mut node = original_node;
            for attr in added {
                node = self.push_edge_addition(&mut pending, lake, node, vid, attr)?;
            }
            if node != original_node {
                pending.new_value_nodes.push((vid, node));
            }
        }

        let gd = &pending.gd;
        let stats_edges_added = gd.added_edges.len();
        let stats_edges_removed = gd.removed_edges.len();
        let stats_values_added = gd.new_values.len();
        let stats_attrs_added = gd.new_attributes.len();

        let applied = self.graph.apply_delta(gd, Some(&self.components))?;
        // The patch succeeded: commit the staged mappings.
        let old_attr_count = self.graph.attribute_count() as u32;
        for &(vid, node) in &pending.new_value_nodes {
            self.node_of_value[vid.index()] = node;
        }
        for (offset, &attr) in pending.new_attr_ids.iter().enumerate() {
            self.attr_index_of[attr.index()] = old_attr_count + offset as u32;
            self.attr_id_of_index.push(attr);
        }
        let new_value_count = applied.graph.value_count();
        let touched_pool = applied.touched_component_nodes();

        // Patch every memoized measure against the new graph.
        {
            let mut caches = self.caches.lock().expect("score cache mutex");
            let ScoreCaches { raw, ranked, meta } = &mut *caches;
            ranked.clear();
            if let Some(meta) = meta {
                meta.resize(new_value_count, (0, 0));
            }
            let mut meta_patched = false;
            for (&measure, raw) in raw.iter_mut() {
                raw.resize(new_value_count, 0.0);
                match measure {
                    Measure::Lcc(method) => {
                        // Equation-1 scores support term-level patching: only
                        // seed values are recomputed in full, every other
                        // dirty value gets an O(|N(u)|·|S∩N(u)|) correction.
                        // The attribute-Jaccard variant recomputes the dirty
                        // region in one fused pass instead.
                        let (fresh, cards) = match method {
                            LccMethod::ValueNeighborJaccard => patch_lcc_value_neighbors(
                                &self.graph,
                                &applied.graph,
                                &applied.seed_values,
                                &applied.dirty_values,
                                raw,
                            ),
                            _ => lcc_with_cardinality_for_values(
                                &applied.graph,
                                &applied.dirty_values,
                                method,
                            ),
                        };
                        for (i, &node) in applied.dirty_values.iter().enumerate() {
                            raw[node as usize] = fresh[i];
                        }
                        if let Some(meta) = meta {
                            if !meta_patched {
                                for (i, &node) in applied.dirty_values.iter().enumerate() {
                                    meta[node as usize] =
                                        (applied.graph.value_attribute_count(node), cards[i]);
                                }
                                meta_patched = true;
                            }
                        }
                    }
                    Measure::ExactBc => {
                        let acc = betweenness_from_sources(
                            &applied.graph,
                            &touched_pool,
                            self.compute_threads,
                        );
                        for &node in &touched_pool {
                            if (node as usize) < new_value_count {
                                raw[node as usize] = acc[node as usize];
                            }
                        }
                    }
                    Measure::ApproxBc(config) => {
                        let salted = dn_graph::approx_bc::ApproxBcConfig {
                            seed: config
                                .seed
                                .wrapping_add(self.generation.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                            ..config
                        };
                        let acc = approximate_betweenness_within(
                            &applied.graph,
                            &touched_pool,
                            salted,
                            self.compute_threads,
                        );
                        for &node in &touched_pool {
                            if (node as usize) < new_value_count {
                                raw[node as usize] = acc[node as usize];
                            }
                        }
                    }
                }
            }
            if let Some(meta) = meta {
                if !meta_patched {
                    for &node in &applied.dirty_values {
                        meta[node as usize] = (
                            applied.graph.value_attribute_count(node),
                            applied.graph.value_neighbor_count(node),
                        );
                    }
                }
            }
        }

        let stats = DeltaStats {
            value_nodes_added: stats_values_added,
            attr_nodes_added: stats_attrs_added,
            edges_added: stats_edges_added,
            edges_removed: stats_edges_removed,
            dirty_values: applied.dirty_values.len(),
            touched_components: applied.touched_components.len(),
            touched_component_nodes: touched_pool.len(),
        };
        self.graph = applied.graph;
        self.components = applied.components;
        self.generation += 1;
        Ok(stats)
    }

    /// Discard all incremental state and rebuild from scratch against the
    /// lake's current live content. The escape hatch when drift is suspected
    /// (and the baseline the incremental path is benchmarked against).
    pub fn refresh<L: LakeView + ?Sized>(&mut self, lake: &L) {
        let rebuilt = DomainNetBuilder {
            config: self.config,
        }
        .build(lake);
        *self = rebuilt;
    }

    fn push_edge_removal(
        &self,
        pending: &mut PendingDelta,
        node: u32,
        attr: AttrId,
    ) -> Result<(), String> {
        debug_assert_ne!(node, u32::MAX, "removal from a value without a node");
        let index = self.attr_index_of[attr.index()];
        if index == u32::MAX {
            return Err(format!(
                "removed incidence references attribute {} with no graph node",
                attr.0
            ));
        }
        pending.gd.removed_edges.push((node, index));
        Ok(())
    }

    /// Ensure `vid` has a (possibly staged) value node and `attr` an
    /// attribute node, then record the edge insertion. Returns the value
    /// node id. Only `pending` is mutated; `self` is committed later.
    fn push_edge_addition(
        &self,
        pending: &mut PendingDelta,
        lake: &MutableLake,
        node: u32,
        vid: ValueId,
        attr: AttrId,
    ) -> Result<u32, String> {
        let node = if node == u32::MAX {
            let label = LakeView::value(lake, vid)
                .ok_or_else(|| format!("value {} unknown to the lake", vid.0))?;
            let new_node = self.graph.value_count() as u32 + pending.gd.new_values.len() as u32;
            pending.gd.new_values.push(label.to_owned());
            new_node
        } else {
            node
        };
        let index = match self.attr_index_of[attr.index()] {
            u32::MAX => match pending.attr_index.get(&attr) {
                Some(&staged) => staged,
                None => {
                    let label = lake
                        .attribute_ref(attr)
                        .map(|r| r.qualified())
                        .unwrap_or_else(|| format!("attr_{}", attr.0));
                    let index = self.graph.attribute_count() as u32
                        + pending.gd.new_attributes.len() as u32;
                    pending.gd.new_attributes.push(label);
                    pending.attr_index.insert(attr, index);
                    pending.new_attr_ids.push(attr);
                    index
                }
            },
            index => index,
        };
        pending.gd.added_edges.push((node, index));
        Ok(node)
    }
}

/// The memoized score state of a [`DomainNet`], in a plain exportable form.
///
/// `raw` and `ranked` are association lists (not maps) so the export order
/// is explicit and deterministic; [`DomainNet::export_state`] sorts them by
/// measure. See [`NetState`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetCachesState {
    /// Per measure: raw score per value node id.
    pub raw: Vec<(Measure, Vec<f64>)>,
    /// Per measure: the memoized ranking (live candidates, best first).
    pub ranked: Vec<(Measure, Vec<ScoredValue>)>,
    /// `(attribute_count, cardinality)` per value node, if cached.
    pub meta: Option<Vec<(usize, usize)>>,
}

/// Everything a [`DomainNet`] holds *besides* its graph and components, in
/// a plain exportable form for the persistence layer (`dn-store`).
///
/// The graph and the component labeling are exported separately (they have
/// their own on-disk sections); [`DomainNet::from_parts`] reunites the
/// three and validates every cross-reference between them before a net is
/// handed back.
#[derive(Debug, Clone, PartialEq)]
pub struct NetState {
    /// The configuration the graph was built with.
    pub config: DomainNetConfig,
    /// Number of deltas folded in since the initial build.
    pub generation: u64,
    /// ValueId -> value node id (`u32::MAX` = no node).
    pub node_of_value: Vec<u32>,
    /// AttrId -> attribute index (`u32::MAX` = no node).
    pub attr_index_of: Vec<u32>,
    /// Attribute index -> AttrId.
    pub attr_id_of_index: Vec<AttrId>,
    /// The memoized per-measure scores and rankings.
    pub caches: NetCachesState,
}

impl DomainNet {
    /// Export the net's non-graph state (id mappings, generation, memoized
    /// scores and rankings) for persistence. Cache entries are sorted by
    /// measure so the export — and therefore the on-disk encoding — is
    /// deterministic across runs.
    pub fn export_state(&self) -> NetState {
        let caches = self.caches.lock().expect("score cache mutex");
        let mut raw: Vec<(Measure, Vec<f64>)> = caches
            .raw
            .iter()
            .map(|(&m, scores)| (m, scores.clone()))
            .collect();
        raw.sort_by_key(|(m, _)| format!("{m:?}"));
        let mut ranked: Vec<(Measure, Vec<ScoredValue>)> = caches
            .ranked
            .iter()
            .map(|(&m, ranking)| (m, ranking.as_ref().clone()))
            .collect();
        ranked.sort_by_key(|(m, _)| format!("{m:?}"));
        NetState {
            config: self.config,
            generation: self.generation,
            node_of_value: self.node_of_value.clone(),
            attr_index_of: self.attr_index_of.clone(),
            attr_id_of_index: self.attr_id_of_index.clone(),
            caches: NetCachesState {
                raw,
                ranked,
                meta: caches.meta.clone(),
            },
        }
    }

    /// Reassemble a net from a persisted graph, component labeling, and
    /// [`NetState`], validating every cross-reference between the three:
    ///
    /// * the components labeling must be consistent with the graph
    ///   ([`Components::validate_against`]);
    /// * `node_of_value` must map lake value ids **bijectively** onto the
    ///   graph's value nodes, and the attribute index maps must be mutual
    ///   inverses covering every attribute node;
    /// * every cached raw-score vector must cover exactly the value nodes
    ///   with finite scores;
    /// * every memoized ranking must have one entry per live candidate, in
    ///   the measure's sort order, each resolving to a live value node whose
    ///   raw score (and cached metadata, when present) agrees.
    ///
    /// # Errors
    /// A description of the first violated invariant; nothing is partially
    /// constructed on failure.
    pub fn from_parts(
        graph: BipartiteGraph,
        components: Components,
        state: NetState,
    ) -> Result<DomainNet, String> {
        components.validate_against(&graph)?;

        let mut node_seen = vec![false; graph.value_count()];
        for (vid, &node) in state.node_of_value.iter().enumerate() {
            if node == u32::MAX {
                continue;
            }
            let slot = node_seen
                .get_mut(node as usize)
                .ok_or_else(|| format!("value {vid} maps to node {node} out of range"))?;
            if *slot {
                return Err(format!("two lake values map to value node {node}"));
            }
            *slot = true;
        }
        if node_seen.iter().any(|seen| !seen) {
            return Err("some graph value nodes have no lake value mapped to them".to_owned());
        }

        if state.attr_id_of_index.len() != graph.attribute_count() {
            return Err(format!(
                "{} attribute ids for {} attribute nodes",
                state.attr_id_of_index.len(),
                graph.attribute_count()
            ));
        }
        for (idx, attr) in state.attr_id_of_index.iter().enumerate() {
            match state.attr_index_of.get(attr.index()) {
                Some(&back) if back as usize == idx => {}
                _ => {
                    return Err(format!(
                        "attribute index {idx} and attribute id {} are not mutual inverses",
                        attr.0
                    ))
                }
            }
        }
        let mapped = state
            .attr_index_of
            .iter()
            .filter(|&&idx| idx != u32::MAX)
            .count();
        if mapped != graph.attribute_count() {
            return Err(format!(
                "{mapped} attribute ids map to nodes but the graph has {}",
                graph.attribute_count()
            ));
        }

        let live_candidates = graph.value_nodes().filter(|&v| graph.degree(v) > 0).count();
        let node_of_label: HashMap<&str, u32> = graph
            .value_nodes()
            .filter(|&v| graph.degree(v) > 0)
            .map(|v| (graph.value_label(v), v))
            .collect();

        if let Some(meta) = &state.caches.meta {
            if meta.len() != graph.value_count() {
                return Err(format!(
                    "metadata cache covers {} of {} value nodes",
                    meta.len(),
                    graph.value_count()
                ));
            }
        }
        for (measure, scores) in &state.caches.raw {
            if scores.len() != graph.value_count() {
                return Err(format!(
                    "{measure:?}: raw scores cover {} of {} value nodes",
                    scores.len(),
                    graph.value_count()
                ));
            }
            if let Some(bad) = scores.iter().find(|s| !s.is_finite()) {
                return Err(format!("{measure:?}: non-finite raw score {bad}"));
            }
        }
        for (measure, ranking) in &state.caches.ranked {
            let raw = state
                .caches
                .raw
                .iter()
                .find(|(m, _)| m == measure)
                .map(|(_, scores)| scores)
                .ok_or_else(|| format!("{measure:?}: ranking cached without raw scores"))?;
            if ranking.len() != live_candidates {
                return Err(format!(
                    "{measure:?}: ranking has {} entries for {live_candidates} live candidates",
                    ranking.len()
                ));
            }
            let higher_first = measure.higher_is_more_homograph_like();
            for (pos, scored) in ranking.iter().enumerate() {
                let &node = node_of_label.get(scored.value.as_str()).ok_or_else(|| {
                    format!(
                        "{measure:?}: ranked value '{}' has no live node",
                        scored.value
                    )
                })?;
                if scored.score != raw[node as usize] {
                    return Err(format!(
                        "{measure:?}: '{}' ranked with score {} but raw score {}",
                        scored.value, scored.score, raw[node as usize]
                    ));
                }
                if let Some(meta) = &state.caches.meta {
                    if meta[node as usize] != (scored.attribute_count, scored.cardinality) {
                        return Err(format!(
                            "{measure:?}: '{}' metadata disagrees with the cache",
                            scored.value
                        ));
                    }
                }
                if pos > 0 {
                    let prev = &ranking[pos - 1];
                    let ordered = if higher_first {
                        prev.score >= scored.score
                    } else {
                        prev.score <= scored.score
                    };
                    if !ordered {
                        return Err(format!(
                            "{measure:?}: ranking out of order at position {pos}"
                        ));
                    }
                }
            }
        }

        let caches = ScoreCaches {
            raw: state.caches.raw.into_iter().collect(),
            ranked: state
                .caches
                .ranked
                .into_iter()
                .map(|(m, ranking)| (m, Arc::new(ranking)))
                .collect(),
            meta: state.caches.meta,
        };
        Ok(DomainNet {
            config: state.config,
            graph,
            components,
            node_of_value: state.node_of_value,
            attr_index_of: state.attr_index_of,
            attr_id_of_index: state.attr_id_of_index,
            generation: state.generation,
            // Recovered nets start sequential; the serving layer re-applies
            // its configured width (the on-disk format never records one).
            compute_threads: 1,
            caches: Mutex::new(caches),
        })
    }
}

/// Staging area for one [`DomainNet::apply_delta`] translation: the graph
/// delta plus every mapping update it implies. Nothing here touches the net
/// until the graph patch has succeeded, so a failed delta leaves the net
/// exactly as it was.
#[derive(Debug, Default)]
struct PendingDelta {
    gd: GraphDelta,
    /// Value-node allocations to commit: `(lake value, new node id)`.
    new_value_nodes: Vec<(ValueId, u32)>,
    /// AttrIds behind the appended attribute indexes, in append order.
    new_attr_ids: Vec<AttrId>,
    /// Staged AttrId -> attribute index lookups for this delta.
    attr_index: HashMap<AttrId, u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Measure;
    use dn_graph::lcc::LccMethod;
    use lake::delta::LakeDelta;
    use lake::table::TableBuilder;

    fn running_example_net(prune: bool) -> DomainNet {
        let lake = lake::fixtures::running_example();
        DomainNetBuilder::new()
            .prune_single_attribute_values(prune)
            .build(&lake)
    }

    #[test]
    fn pruned_graph_keeps_only_candidates() {
        let net = running_example_net(true);
        // Only Jaguar, Puma, Panda, Toyota repeat across attributes.
        assert_eq!(net.candidate_count(), 4);
        assert_eq!(net.live_candidate_count(), 4);
        // Attributes that lose all their values are dropped (e.g. numeric
        // columns whose values are unique).
        assert!(net.attribute_count() <= 12);
        net.graph().validate().unwrap();
    }

    #[test]
    fn unpruned_graph_keeps_every_value_and_attribute() {
        let lake = lake::fixtures::running_example();
        let net = running_example_net(false);
        assert_eq!(net.candidate_count(), lake.value_count());
        assert_eq!(net.attribute_count(), lake.attribute_count());
        assert_eq!(net.edge_count(), lake.incidence_count());
    }

    #[test]
    fn bc_ranks_jaguar_first_on_the_running_example() {
        // Example 3.6: BC separates Jaguar and Puma from Panda and Toyota.
        let net = running_example_net(false);
        let ranked = net.rank(Measure::exact_bc());
        assert_eq!(ranked[0].value, "JAGUAR");
        let jaguar = DomainNet::score_of(&ranked, "JAGUAR").unwrap().score;
        let puma = DomainNet::score_of(&ranked, "PUMA").unwrap().score;
        let panda = DomainNet::score_of(&ranked, "PANDA").unwrap().score;
        let toyota = DomainNet::score_of(&ranked, "TOYOTA").unwrap().score;
        assert!(jaguar > puma);
        assert!(jaguar > panda && jaguar > toyota);
        assert!(puma > 0.0);
    }

    #[test]
    fn lcc_ranks_jaguar_below_unambiguous_repeats() {
        // Example 3.6 reports LCC(Jaguar) = 0.36 below the repeated-but-
        // unambiguous values (Panda, Toyota ≈ 0.45). Only the ordering of
        // Jaguar is robust to small definitional details (the paper itself
        // notes this example barely separates LCC ranks), so that is what we
        // assert: the four-meaning homograph has the lowest LCC of the
        // repeated values.
        let net = running_example_net(false);
        let ranked = net.rank(Measure::lcc());
        let jaguar = DomainNet::score_of(&ranked, "JAGUAR").unwrap().score;
        let puma = DomainNet::score_of(&ranked, "PUMA").unwrap().score;
        let panda = DomainNet::score_of(&ranked, "PANDA").unwrap().score;
        let toyota = DomainNet::score_of(&ranked, "TOYOTA").unwrap().score;
        assert!(jaguar < panda && jaguar < toyota);
        assert!(jaguar < puma);
        // All LCC scores are proper clustering coefficients.
        for score in [jaguar, puma, panda, toyota] {
            assert!((0.0..=1.0).contains(&score));
        }
    }

    #[test]
    fn exact_bc_scores_are_bit_identical_across_compute_widths() {
        let seq = running_example_net(false);
        let mut par = running_example_net(false);
        par.set_compute_threads(4);
        assert_eq!(par.compute_threads(), 4);
        let seq_ranked = net_scores(&seq);
        let par_ranked = net_scores(&par);
        assert_eq!(seq_ranked, par_ranked);
    }

    /// `(value, score bits)` of the exact-BC ranking — bitwise, so the
    /// comparison catches any thread-count-dependent float reassociation.
    fn net_scores(net: &DomainNet) -> Vec<(String, u64)> {
        net.rank(Measure::exact_bc())
            .into_iter()
            .map(|s| (s.value, s.score.to_bits()))
            .collect()
    }

    #[test]
    fn approx_bc_with_full_samples_matches_exact_ranking() {
        let net = running_example_net(false);
        let exact = net.rank(Measure::exact_bc());
        let n = net.graph().node_count();
        let approx = net.rank(Measure::approx_bc(n, 3));
        assert_eq!(exact[0].value, approx[0].value);
        // Scores agree, not just the ranking.
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e.score - a.score).abs() < 1e-6);
        }
    }

    #[test]
    fn attribute_jaccard_lcc_is_also_available() {
        let net = running_example_net(false);
        let ranked = net.rank(Measure::Lcc(LccMethod::AttributeJaccard));
        assert_eq!(ranked.len(), net.candidate_count());
        for s in &ranked {
            assert!((0.0..=1.0).contains(&s.score));
        }
    }

    #[test]
    fn top_k_truncates_and_scored_values_carry_metadata() {
        let net = running_example_net(true);
        let top = net.top_k(Measure::exact_bc(), 2);
        assert_eq!(top.len(), 2);
        let jaguar = &top[0];
        assert_eq!(jaguar.value, "JAGUAR");
        assert_eq!(jaguar.attribute_count, 4);
        assert!(jaguar.cardinality >= 3);
    }

    #[test]
    fn ranking_is_deterministic() {
        let net = running_example_net(false);
        let a = net.rank(Measure::exact_bc());
        let b = net.rank(Measure::exact_bc());
        assert_eq!(a, b);
    }

    #[test]
    fn ranking_is_memoized_per_measure() {
        let net = running_example_net(false);
        let first = net.rank_shared(Measure::exact_bc());
        let second = net.rank_shared(Measure::exact_bc());
        assert!(
            Arc::ptr_eq(&first, &second),
            "repeated rank calls must hit the memo"
        );
        // A different measure gets its own entry.
        let lcc = net.rank_shared(Measure::lcc());
        assert!(!Arc::ptr_eq(&first, &lcc));
    }

    #[test]
    fn empty_lake_produces_empty_model() {
        let lake = lake::catalog::LakeCatalog::new();
        let net = DomainNetBuilder::new().build(&lake);
        assert_eq!(net.candidate_count(), 0);
        assert!(net.rank(Measure::exact_bc()).is_empty());
        assert!(net.rank(Measure::lcc()).is_empty());
    }

    // ------------------------------------------------------------------
    // Incremental maintenance
    // ------------------------------------------------------------------

    fn mutable_running_example() -> MutableLake {
        MutableLake::from_catalog(&lake::fixtures::running_example())
    }

    /// Compare a maintained net against a fresh build of the same lake:
    /// identical live node/edge label sets and identical scores.
    fn assert_equivalent(incremental: &DomainNet, lake: &MutableLake, measure: Measure) {
        let fresh = DomainNetBuilder {
            config: incremental.config(),
        }
        .build(lake);
        let a = incremental.rank(measure);
        let b = fresh.rank(measure);
        let labels =
            |r: &[ScoredValue]| -> Vec<String> { r.iter().map(|s| s.value.clone()).collect() };
        assert_eq!(labels(&a), labels(&b), "ranked orders diverged");
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x.score - y.score).abs() < 1e-9,
                "{}: {} vs {}",
                x.value,
                x.score,
                y.score
            );
            assert_eq!(x.attribute_count, y.attribute_count, "{}", x.value);
            assert_eq!(x.cardinality, y.cardinality, "{}", x.value);
        }
    }

    #[test]
    fn apply_delta_add_table_matches_fresh_build() {
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new().build(&lake);
        // Warm the caches so the patch path is exercised.
        let _ = net.rank(Measure::lcc());
        let _ = net.rank(Measure::exact_bc());

        let delta = LakeDelta::new().add_table(
            TableBuilder::new("T5")
                .column("animal", ["Jaguar", "Pelican", "Okapi"])
                .build()
                .unwrap(),
        );
        let effects = lake.apply(&delta).unwrap();
        let stats = net.apply_delta(&lake, &effects).unwrap();
        assert!(stats.edges_added > 0);
        net.graph().validate().unwrap();
        assert_equivalent(&net, &lake, Measure::lcc());
        assert_equivalent(&net, &lake, Measure::exact_bc());
    }

    #[test]
    fn apply_delta_remove_table_matches_fresh_build() {
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new().build(&lake);
        let _ = net.rank(Measure::lcc());
        let _ = net.rank(Measure::exact_bc());

        let effects = lake.apply(&LakeDelta::new().remove_table("T3")).unwrap();
        let stats = net.apply_delta(&lake, &effects).unwrap();
        assert!(stats.edges_removed > 0);
        net.graph().validate().unwrap();
        assert_equivalent(&net, &lake, Measure::lcc());
        assert_equivalent(&net, &lake, Measure::exact_bc());
    }

    #[test]
    fn apply_delta_replace_value_matches_fresh_build() {
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new().build(&lake);
        let _ = net.rank(Measure::lcc());
        let _ = net.rank(Measure::exact_bc());

        let effects = lake
            .apply(&LakeDelta::new().replace_value("T4", "Name", "Jaguar", "Okapi"))
            .unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        net.graph().validate().unwrap();
        assert_equivalent(&net, &lake, Measure::lcc());
        assert_equivalent(&net, &lake, Measure::exact_bc());
    }

    #[test]
    fn apply_delta_without_warm_caches_still_patches_graph() {
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new().build(&lake);
        let effects = lake.apply(&LakeDelta::new().remove_table("T1")).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        assert_equivalent(&net, &lake, Measure::lcc());
        assert_equivalent(&net, &lake, Measure::exact_bc());
    }

    #[test]
    fn apply_delta_invalidates_the_rank_memo() {
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(&lake);
        let before = net.rank_shared(Measure::exact_bc());
        let effects = lake.apply(&LakeDelta::new().remove_table("T3")).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        let after = net.rank_shared(Measure::exact_bc());
        assert!(
            !Arc::ptr_eq(&before, &after),
            "mutation must invalidate the memoized ranking"
        );
        assert_ne!(before.len(), after.len());
    }

    #[test]
    fn generation_counts_applied_deltas_and_warming_fills_the_memo() {
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new().build(&lake);
        assert_eq!(net.generation(), 0);

        let measures = [Measure::lcc(), Measure::exact_bc()];
        net.warm_rankings(&measures);
        for m in measures {
            let warm = net.rank_shared(m);
            assert!(
                Arc::ptr_eq(&warm, &net.rank_shared(m)),
                "warm_rankings must have populated the memo"
            );
        }

        let effects = lake.apply(&LakeDelta::new().remove_table("T3")).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        assert_eq!(net.generation(), 1);
        net.refresh(&lake);
        assert_eq!(net.generation(), 0, "refresh resets the delta counter");
    }

    #[test]
    fn refresh_rebuilds_from_live_state() {
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new().build(&lake);
        let effects = lake.apply(&LakeDelta::new().remove_table("T2")).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        let patched_rank = net.rank(Measure::exact_bc());
        net.refresh(&lake);
        let fresh_rank = net.rank(Measure::exact_bc());
        assert_eq!(
            patched_rank.iter().map(|s| &s.value).collect::<Vec<_>>(),
            fresh_rank.iter().map(|s| &s.value).collect::<Vec<_>>()
        );
    }

    #[test]
    fn candidacy_flips_are_handled_in_both_directions() {
        // "Okapi" starts in one attribute (not a candidate under pruning),
        // gains a second (candidate), then loses it again.
        let mut lake = MutableLake::new();
        let base = LakeDelta::new()
            .add_table(
                TableBuilder::new("A")
                    .column("x", ["Okapi", "Panda", "Lemur"])
                    .build()
                    .unwrap(),
            )
            .add_table(
                TableBuilder::new("B")
                    .column("y", ["Panda", "Lemur"])
                    .build()
                    .unwrap(),
            );
        lake.apply(&base).unwrap();
        let mut net = DomainNetBuilder::new().build(&lake);
        let _ = net.rank(Measure::lcc());
        assert_eq!(net.live_candidate_count(), 2); // Panda, Lemur

        let effects = lake
            .apply(
                &LakeDelta::new().add_table(
                    TableBuilder::new("C")
                        .column("z", ["Okapi"])
                        .build()
                        .unwrap(),
                ),
            )
            .unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        assert_eq!(net.live_candidate_count(), 3);
        assert_equivalent(&net, &lake, Measure::lcc());
        assert_equivalent(&net, &lake, Measure::exact_bc());

        let effects = lake.apply(&LakeDelta::new().remove_table("C")).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        assert_eq!(net.live_candidate_count(), 2, "Okapi is tombstoned again");
        assert_equivalent(&net, &lake, Measure::lcc());
        assert_equivalent(&net, &lake, Measure::exact_bc());
    }

    #[test]
    fn redelivered_effects_are_a_no_op() {
        // The translation diffs desired (lake) against current (graph)
        // state, so effects that were already folded in resolve to an empty
        // graph delta instead of corrupting the net.
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new().build(&lake);
        let _ = net.rank(Measure::lcc());

        let effects = lake.apply(&LakeDelta::new().remove_table("T3")).unwrap();
        let first = net.apply_delta(&lake, &effects).unwrap();
        assert!(first.edges_removed > 0);
        let second = net.apply_delta(&lake, &effects).unwrap();
        assert_eq!(second.edges_added, 0);
        assert_eq!(second.edges_removed, 0);
        net.graph().validate().unwrap();
        assert_equivalent(&net, &lake, Measure::lcc());
        assert_equivalent(&net, &lake, Measure::exact_bc());
    }

    #[test]
    fn approx_bc_is_re_estimated_for_touched_components() {
        let mut lake = mutable_running_example();
        let mut net = DomainNetBuilder::new().build(&lake);
        let n = net.graph().node_count();
        let measure = Measure::approx_bc(n * 2, 7);
        let _ = net.rank(measure);
        let effects = lake.apply(&LakeDelta::new().remove_table("T3")).unwrap();
        net.apply_delta(&lake, &effects).unwrap();
        // With sample count >= pool size the re-estimation is exact, so the
        // patched approx ranking must agree with a fresh exact computation.
        let approx = net.rank(measure);
        let fresh = DomainNetBuilder::new().build(&lake);
        let exact = fresh.rank(Measure::exact_bc());
        for (a, e) in approx.iter().zip(&exact) {
            assert_eq!(a.value, e.value);
            assert!((a.score - e.score).abs() < 1e-6);
        }
    }
}
