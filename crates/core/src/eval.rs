//! Evaluation metrics: precision, recall, and F1 at `k`, and full top-`k`
//! curves (Figures 7 and 8, Tables 2 and 3 of the paper).
//!
//! The paper's protocol: rank all candidate values by a measure, take the
//! top-`k` (by default `k` = the number of ground-truth homographs), and
//! report precision (fraction of the retrieved values that are true
//! homographs), recall (fraction of the true homographs retrieved), and F1.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::measure::ScoredValue;

/// Precision/recall/F1 at a specific cut-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// The cut-off (number of top-ranked values considered retrieved).
    pub k: usize,
    /// Precision at `k`.
    pub precision: f64,
    /// Recall at `k`.
    pub recall: f64,
    /// F1 score at `k`.
    pub f1: f64,
    /// Number of true homographs among the top-`k`.
    pub hits: usize,
}

impl EvalPoint {
    fn new(k: usize, hits: usize, truth_size: usize) -> Self {
        let precision = if k == 0 { 0.0 } else { hits as f64 / k as f64 };
        let recall = if truth_size == 0 {
            0.0
        } else {
            hits as f64 / truth_size as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        EvalPoint {
            k,
            precision,
            recall,
            f1,
            hits,
        }
    }
}

/// Compute precision/recall/F1 of the top-`k` ranked values against a set of
/// ground-truth homographs (normalized strings).
pub fn precision_recall_at_k(
    ranked: &[ScoredValue],
    truth: &BTreeSet<String>,
    k: usize,
) -> EvalPoint {
    let k = k.min(ranked.len());
    let hits = ranked[..k]
        .iter()
        .filter(|s| truth.contains(&s.value))
        .count();
    EvalPoint::new(k, hits, truth.len())
}

/// Fraction of the `expected` values that appear in the top-`k` of the
/// ranking — the metric of Tables 2 and 3 ("% of injected homographs in the
/// top 50").
pub fn recall_of_expected_in_top_k(
    ranked: &[ScoredValue],
    expected: &BTreeSet<String>,
    k: usize,
) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let k = k.min(ranked.len());
    let hits = ranked[..k]
        .iter()
        .filter(|s| expected.contains(&s.value))
        .count();
    hits as f64 / expected.len() as f64
}

/// A full precision/recall/F1 curve over every prefix of the ranking
/// (Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopKCurve {
    /// Evaluation points, one per sampled cut-off, in increasing `k`.
    pub points: Vec<EvalPoint>,
    /// Number of ground-truth homographs.
    pub truth_size: usize,
}

impl TopKCurve {
    /// Compute the curve at every cut-off in `1..=ranked.len()`.
    ///
    /// The scan is incremental (O(n) over the ranking), so computing the full
    /// curve over hundreds of thousands of candidates is cheap.
    pub fn full(ranked: &[ScoredValue], truth: &BTreeSet<String>) -> Self {
        Self::sampled(ranked, truth, 1)
    }

    /// Compute the curve at every `step`-th cut-off (plus the final one).
    pub fn sampled(ranked: &[ScoredValue], truth: &BTreeSet<String>, step: usize) -> Self {
        let step = step.max(1);
        let mut points = Vec::new();
        let mut hits = 0usize;
        for (i, scored) in ranked.iter().enumerate() {
            if truth.contains(&scored.value) {
                hits += 1;
            }
            let k = i + 1;
            if k % step == 0 || k == ranked.len() {
                points.push(EvalPoint::new(k, hits, truth.len()));
            }
        }
        TopKCurve {
            points,
            truth_size: truth.len(),
        }
    }

    /// The point with the highest F1 (ties broken toward smaller `k`).
    pub fn best_f1(&self) -> Option<EvalPoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.f1.total_cmp(&b.f1).then(b.k.cmp(&a.k)))
    }

    /// The point at (or nearest below) a given `k`.
    pub fn at_k(&self, k: usize) -> Option<EvalPoint> {
        self.points
            .iter()
            .copied()
            .rfind(|p| p.k <= k)
            .or_else(|| self.points.first().copied())
    }

    /// Precision at the cut-off equal to the number of true homographs — the
    /// paper's headline "precision@|H|" number.
    pub fn precision_at_truth_size(&self) -> Option<f64> {
        self.at_k(self.truth_size).map(|p| p.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(values: &[&str]) -> Vec<ScoredValue> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| ScoredValue {
                value: (*v).to_string(),
                score: 1.0 / (i + 1) as f64,
                attribute_count: 2,
                cardinality: 10,
            })
            .collect()
    }

    fn truth(values: &[&str]) -> BTreeSet<String> {
        values.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn precision_recall_basic() {
        let ranked = scored(&["A", "B", "C", "D"]);
        let t = truth(&["A", "C"]);
        let p2 = precision_recall_at_k(&ranked, &t, 2);
        assert_eq!(p2.hits, 1);
        assert!((p2.precision - 0.5).abs() < 1e-12);
        assert!((p2.recall - 0.5).abs() < 1e-12);
        assert!((p2.f1 - 0.5).abs() < 1e-12);

        let p4 = precision_recall_at_k(&ranked, &t, 4);
        assert_eq!(p4.hits, 2);
        assert!((p4.precision - 0.5).abs() < 1e-12);
        assert!((p4.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_ranking_is_clamped() {
        let ranked = scored(&["A", "B"]);
        let t = truth(&["A"]);
        let p = precision_recall_at_k(&ranked, &t, 10);
        assert_eq!(p.k, 2);
        assert_eq!(p.hits, 1);
    }

    #[test]
    fn perfect_ranking_has_perfect_scores_at_truth_size() {
        let ranked = scored(&["H1", "H2", "H3", "X", "Y"]);
        let t = truth(&["H1", "H2", "H3"]);
        let p = precision_recall_at_k(&ranked, &t, 3);
        assert_eq!(p.precision, 1.0);
        assert_eq!(p.recall, 1.0);
        assert_eq!(p.f1, 1.0);
    }

    #[test]
    fn empty_truth_and_empty_ranking() {
        let ranked = scored(&["A"]);
        let p = precision_recall_at_k(&ranked, &BTreeSet::new(), 1);
        assert_eq!(p.recall, 0.0);
        assert_eq!(p.f1, 0.0);

        let p = precision_recall_at_k(&[], &truth(&["A"]), 5);
        assert_eq!(p.k, 0);
        assert_eq!(p.precision, 0.0);
    }

    #[test]
    fn recall_of_expected_matches_table_2_semantics() {
        let ranked = scored(&["I1", "X", "I2", "Y", "I3"]);
        let expected = truth(&["I1", "I2", "I3"]);
        assert!((recall_of_expected_in_top_k(&ranked, &expected, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall_of_expected_in_top_k(&ranked, &expected, 5) - 1.0).abs() < 1e-12);
        assert_eq!(
            recall_of_expected_in_top_k(&ranked, &BTreeSet::new(), 3),
            1.0
        );
    }

    #[test]
    fn curve_is_monotone_in_recall_and_finds_best_f1() {
        let ranked = scored(&["H1", "X", "H2", "Y", "H3", "Z"]);
        let t = truth(&["H1", "H2", "H3"]);
        let curve = TopKCurve::full(&ranked, &t);
        assert_eq!(curve.points.len(), 6);
        for w in curve.points.windows(2) {
            assert!(w[1].recall >= w[0].recall, "recall never decreases with k");
        }
        let best = curve.best_f1().unwrap();
        assert!(best.f1 > 0.0);
        // Best F1 here is at k=5 (precision 3/5, recall 1.0, f1 = 0.75) vs
        // k=3 (precision 2/3, recall 2/3, f1 = 2/3).
        assert_eq!(best.k, 5);
        assert!((curve.precision_at_truth_size().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_curve_hits_the_final_k() {
        let ranked = scored(&["A", "B", "C", "D", "E", "F", "G"]);
        let t = truth(&["A", "D"]);
        let curve = TopKCurve::sampled(&ranked, &t, 3);
        let ks: Vec<usize> = curve.points.iter().map(|p| p.k).collect();
        assert_eq!(ks, vec![3, 6, 7]);
        assert_eq!(curve.points.last().unwrap().hits, 2);
    }

    #[test]
    fn at_k_picks_nearest_point_at_or_below() {
        let ranked = scored(&["A", "B", "C", "D", "E", "F"]);
        let t = truth(&["A"]);
        let curve = TopKCurve::sampled(&ranked, &t, 2);
        assert_eq!(curve.at_k(5).unwrap().k, 4);
        assert_eq!(curve.at_k(2).unwrap().k, 2);
        assert_eq!(curve.at_k(1).unwrap().k, 2, "falls back to the first point");
    }
}
