//! # `domainnet` — unsupervised homograph detection for data lakes
//!
//! This crate is the core of the reproduction of *DomainNet: Homograph
//! Detection for Data Lake Disambiguation* (Leventidis, Di Rocco,
//! Gatterbauer, Miller, Riedewald — EDBT 2021). A **homograph** is a data
//! value that occurs in a data lake with more than one meaning: `Jaguar` as
//! an animal in a zoo table and as a manufacturer in a car table, `CA` as a
//! country code and as a state abbreviation, `"."` as a null marker in a
//! dozen unrelated columns. DomainNet finds such values *without any
//! supervision, metadata, or external knowledge* in three steps (Figure 4 of
//! the paper):
//!
//! 1. **Graph construction** — the lake is turned into a bipartite graph of
//!    value nodes and attribute nodes ([`pipeline::DomainNetBuilder`]).
//! 2. **Measure computation** — a network-centrality score is computed per
//!    value node: betweenness centrality (exact or sampled) or the bipartite
//!    local clustering coefficient ([`Measure`]).
//! 3. **Ranking** — value nodes are ranked so that the most homograph-like
//!    values come first: descending BC, ascending LCC
//!    ([`pipeline::DomainNet::rank`]).
//!
//! The crate also contains the evaluation machinery used by the paper's
//! experiments: ground-truth handling and precision/recall/F1 at `k`
//! ([`eval`]).
//!
//! ## Quick start
//!
//! ```
//! use domainnet::pipeline::DomainNetBuilder;
//! use domainnet::Measure;
//!
//! // The four-table running example from Figure 1 of the paper.
//! let lake = lake::fixtures::running_example();
//!
//! let net = DomainNetBuilder::new()
//!     .prune_single_attribute_values(false)
//!     .build(&lake);
//! let ranked = net.rank(Measure::exact_bc());
//!
//! // Jaguar bridges the animal and company meanings and ranks first.
//! assert_eq!(ranked[0].value, "JAGUAR");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod eval;
pub mod meanings;
pub mod measure;
pub mod pipeline;

pub use eval::{precision_recall_at_k, EvalPoint, TopKCurve};
pub use meanings::{MeaningConfig, MeaningEstimator};
pub use measure::{Measure, ScoredValue};
pub use pipeline::{DeltaStats, DomainNet, DomainNetBuilder, NetCachesState, NetState};
