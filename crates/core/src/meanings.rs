//! Estimating the *number of meanings* of a detected homograph.
//!
//! DomainNet ranks values by how homograph-like they are but does not, by
//! itself, say how many distinct meanings a homograph has. The paper's
//! outlook (§6) proposes community detection for this: each community of the
//! lake graph corresponds to a latent semantic type, so the number of
//! distinct communities among the attributes containing a value estimates its
//! number of meanings. This module implements that proposal on top of
//! [`dn_graph::community::label_propagation`].
//!
//! ```
//! use domainnet::pipeline::DomainNetBuilder;
//! use domainnet::meanings::MeaningEstimator;
//!
//! let lake = lake::fixtures::running_example();
//! let net = DomainNetBuilder::new().prune_single_attribute_values(false).build(&lake);
//! let estimator = MeaningEstimator::fit(&net, Default::default());
//!
//! // Every candidate value gets a meaning estimate of at least 1.
//! assert!(estimator.meanings_of("JAGUAR").unwrap() >= 1);
//! assert!(estimator.community_count() >= 2);
//! ```
//!
//! On the tiny running example the animal/company split is only weakly
//! supported (four small attributes), so the estimate for `Jaguar` may be 1
//! or 2; on lakes where each meaning is backed by several attributes the
//! estimator recovers the exact count (see the unit tests).

use std::collections::HashMap;

use dn_graph::community::{label_propagation, Communities, LabelPropagationConfig};
use serde::{Deserialize, Serialize};

use crate::pipeline::DomainNet;

/// Configuration for meaning estimation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeaningConfig {
    /// Label-propagation parameters.
    pub label_propagation: LabelPropagationConfig,
}

/// Estimated meaning counts for every candidate value of a [`DomainNet`]
/// model.
#[derive(Debug, Clone)]
pub struct MeaningEstimator {
    communities: Communities,
    /// value string -> value node id
    index: HashMap<String, u32>,
    /// per value node: number of distinct communities among its attributes
    meanings: Vec<usize>,
}

impl MeaningEstimator {
    /// Detect communities on the DomainNet graph and derive, for every
    /// candidate value, the number of distinct communities among the
    /// attributes that contain it.
    pub fn fit(net: &DomainNet, config: MeaningConfig) -> Self {
        let graph = net.graph();
        let communities = label_propagation(graph, config.label_propagation);
        let mut index = HashMap::with_capacity(graph.value_count());
        let mut meanings = Vec::with_capacity(graph.value_count());
        for v in graph.value_nodes() {
            index.insert(graph.value_label(v).to_owned(), v);
            let attrs: Vec<u32> = graph.neighbors(v).to_vec();
            meanings.push(communities.distinct_among(&attrs).max(1));
        }
        MeaningEstimator {
            communities,
            index,
            meanings,
        }
    }

    /// Number of communities detected in the whole graph.
    pub fn community_count(&self) -> usize {
        self.communities.count
    }

    /// Estimated number of meanings of a (normalized) value, if it is a
    /// candidate in the graph.
    pub fn meanings_of(&self, value: &str) -> Option<usize> {
        self.index.get(value).map(|&v| self.meanings[v as usize])
    }

    /// Values estimated to have at least `min_meanings` meanings, with their
    /// estimates, sorted by estimate descending then by value.
    pub fn multi_meaning_values(&self, min_meanings: usize) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .index
            .iter()
            .map(|(value, &node)| (value.clone(), self.meanings[node as usize]))
            .filter(|(_, m)| *m >= min_meanings)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DomainNetBuilder;
    use lake::table::TableBuilder;

    fn estimator_for(lake: &lake::catalog::LakeCatalog, prune: bool) -> MeaningEstimator {
        let net = DomainNetBuilder::new()
            .prune_single_attribute_values(prune)
            .build(lake);
        MeaningEstimator::fit(&net, MeaningConfig::default())
    }

    #[test]
    fn running_example_meanings() {
        let lake = lake::fixtures::running_example();
        let estimator = estimator_for(&lake, false);
        assert!(estimator.community_count() >= 2);
        // On this tiny graph the animal/company split is only weakly
        // supported, so estimates are bounded rather than exact.
        let jaguar = estimator.meanings_of("JAGUAR").unwrap();
        assert!((1..=4).contains(&jaguar));
        assert!(estimator.meanings_of("PANDA").unwrap() <= 2);
        assert!(estimator.meanings_of("GOOGLE").is_some());
        assert!(estimator.meanings_of("NOT_IN_LAKE").is_none());
    }

    #[test]
    fn clearly_separated_communities_give_exact_counts() {
        // Two well-populated domains (animals across two zoo tables,
        // companies across two finance tables) sharing only "Jaguar".
        let animals = [
            "Panda", "Lemur", "Jaguar", "Otter", "Badger", "Walrus", "Seal",
        ];
        let firms = [
            "Google", "Amazon", "Jaguar", "Apple", "Shell", "Nestle", "Bayer",
        ];
        let t1 = TableBuilder::new("zoo_a")
            .column("animal", animals)
            .build()
            .unwrap();
        let t2 = TableBuilder::new("zoo_b")
            .column("species", animals)
            .build()
            .unwrap();
        let t3 = TableBuilder::new("firms_a")
            .column("company", firms)
            .build()
            .unwrap();
        let t4 = TableBuilder::new("firms_b")
            .column("name", firms)
            .build()
            .unwrap();
        let lake = lake::catalog::LakeCatalog::from_tables([t1, t2, t3, t4]).unwrap();

        let estimator = estimator_for(&lake, true);
        assert_eq!(estimator.meanings_of("JAGUAR"), Some(2));
        assert_eq!(estimator.meanings_of("PANDA"), Some(1));
        assert_eq!(estimator.meanings_of("GOOGLE"), Some(1));

        let multi = estimator.multi_meaning_values(2);
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].0, "JAGUAR");
    }

    #[test]
    fn multi_meaning_listing_is_sorted_and_filtered() {
        let lake = lake::fixtures::running_example();
        let estimator = estimator_for(&lake, false);
        let multi = estimator.multi_meaning_values(2);
        for window in multi.windows(2) {
            assert!(window[0].1 >= window[1].1);
        }
        for (_, meanings) in &multi {
            assert!(*meanings >= 2);
        }
        let all = estimator.multi_meaning_values(1);
        assert!(all.len() >= multi.len());
    }
}
