//! Sharded-serving equivalence and crash recovery.
//!
//! Three suites for the component-sharded coordinator
//! (`dn_service::serve_sharded*`):
//!
//! * `fifty_seeded_sequences_agree_across_shard_counts` — the property:
//!   50 seeded mutation sequences, each replayed through coordinators at
//!   1, 2, and 4 shards, must all end with merged rankings that match a
//!   from-scratch single-engine build of the final lake — same candidate
//!   sets, scores within 1e-9 (both served measures are exact; the only
//!   legal slack is float summation order after a component migration
//!   rebuilds a shard's graph).
//! * `kill_between_shard_checkpoints_recovers_a_consistent_epoch` — the
//!   crash scenario the sharded store layout exists for: shards checkpoint
//!   on their *own* cadence, so a kill almost always catches them at
//!   different snapshot/WAL positions; recovery must replay each shard's
//!   WAL suffix independently and restore the exact per-shard epochs (and
//!   therefore the exact coordinator epoch, their sum) plus rankings that
//!   match a fresh build — then keep serving.
//! * `rebalance_intent_left_by_a_crash_is_completed_on_recovery` — a
//!   crash mid-migration leaves the intent file plus a table live on both
//!   shards; `serve_sharded_from_dir` must finish the move (remove from
//!   source, clear the intent) before accepting traffic.
//!
//! Temp directories live under `CARGO_TARGET_TMPDIR` (the CI hygiene gate
//! fails if anything is left behind).

use std::collections::HashMap;
use std::path::PathBuf;

use datagen::mutate::{MutationConfig, MutationStream};
use dn_service::{
    serve_durable, serve_sharded, serve_sharded_durable, serve_sharded_from_dir, CheckpointPolicy,
    ServiceConfig,
};
use domainnet::{DomainNetBuilder, Measure};
use lake::delta::{LakeDelta, MutableLake};
use lake::table::TableBuilder;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const SEQUENCES: usize = 50;
const DELTAS_PER_SEQUENCE: usize = 4;

/// Both measures exact: equivalence can be asserted to 1e-9 with no
/// estimation slack (the approx-BC sampler is salted by generation and
/// deliberately out of scope here).
fn measures() -> Vec<Measure> {
    vec![Measure::lcc(), Measure::exact_bc()]
}

fn config() -> ServiceConfig {
    ServiceConfig {
        measures: measures(),
        cache_capacity: 16,
        prune_single_attribute_values: true,
        threads: 1,
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dn_shard_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A base lake with three *disjoint* value islands, so the partitioner
/// has real components to spread and mutations can later bridge them.
fn multi_component_base() -> MutableLake {
    let mut lake = MutableLake::new();
    lake.apply(
        &LakeDelta::new()
            .add_table(table("zoo", "animal", &["Jaguar", "Okapi", "Zebra"]))
            .add_table(table("cars", "make", &["Jaguar", "Fiat", "Kia"]))
            .add_table(table("fx", "code", &["USD", "EUR", "JPY"]))
            .add_table(table("prices", "currency", &["USD", "EUR", "GBP"]))
            .add_table(table("cities", "city", &["Memphis", "Sydney", "Austin"]))
            .add_table(table("routes", "dest", &["Sydney", "Phoenix", "Lima"])),
    )
    .expect("base lake applies");
    lake
}

fn table(name: &str, column: &str, cells: &[&str]) -> lake::Table {
    TableBuilder::new(name)
        .column(column, cells.iter().copied())
        .build()
        .expect("rectangular by construction")
}

/// Assert one coordinator's merged rankings equal a from-scratch
/// single-engine build of `expected` — same candidates, scores to 1e-9.
fn assert_matches_fresh_build(view: &dn_service::MultiView, expected: &MutableLake, context: &str) {
    let fresh = DomainNetBuilder::new().build(expected);
    for measure in measures() {
        let merged = view.top_k(measure, usize::MAX).expect("served measure");
        let rebuilt = fresh.rank_shared(measure);
        assert_eq!(
            merged.len(),
            rebuilt.len(),
            "{context} {measure:?}: candidate counts diverged"
        );
        let by_value: HashMap<&str, f64> = rebuilt
            .iter()
            .map(|s| (s.value.as_str(), s.score))
            .collect();
        for s in &merged {
            let fresh_score = by_value
                .get(s.value.as_str())
                .unwrap_or_else(|| panic!("{context} {measure:?}: {} not in rebuild", s.value));
            assert!(
                (s.score - fresh_score).abs() < 1e-9,
                "{context} {measure:?}: {} scored {} sharded vs {} rebuilt",
                s.value,
                s.score,
                fresh_score
            );
        }
    }
}

#[test]
fn fifty_seeded_sequences_agree_across_shard_counts() {
    let base = multi_component_base();
    for sequence in 0..SEQUENCES {
        let seed = 5_000 + sequence as u64;
        // Materialize the sequence once so every shard count replays the
        // byte-identical deltas.
        let mut stream = MutationStream::new(MutationConfig {
            seed,
            tables_per_delta: 2,
            rows_per_table: 8,
            ..MutationConfig::default()
        });
        let mut shadow = base.clone();
        let mut deltas = Vec::with_capacity(DELTAS_PER_SEQUENCE);
        for _ in 0..DELTAS_PER_SEQUENCE {
            let delta = stream.next_delta(&shadow);
            shadow.apply(&delta).expect("stream deltas apply");
            deltas.push(delta);
        }

        for shards in SHARD_COUNTS {
            let (handle, mut coordinator) = serve_sharded(base.clone(), config(), shards);
            for delta in &deltas {
                coordinator.stage(delta.clone());
                coordinator.commit().expect("batch commits cleanly");
                coordinator.publish();
            }
            let view = handle.current();
            view.verify_consistency()
                .unwrap_or_else(|e| panic!("seq {sequence} shards {shards}: {e}"));
            assert_matches_fresh_build(&view, &shadow, &format!("seq {sequence} shards {shards}"));
        }
    }
}

#[test]
fn kill_between_shard_checkpoints_recovers_a_consistent_epoch() {
    let root = test_dir("kill");
    let base = multi_component_base();
    let policy = CheckpointPolicy::every_epochs(2);
    let shards = 3;

    let (pre_epoch, per_shard_epochs, shadow) = {
        let (_, mut coordinator) =
            serve_sharded_durable(base.clone(), config(), &root, policy, shards)
                .expect("fresh sharded store");
        let mut stream = MutationStream::new(MutationConfig {
            seed: 4242,
            tables_per_delta: 2,
            rows_per_table: 10,
            ..MutationConfig::default()
        });
        let mut shadow = base;
        for _ in 0..10 {
            let delta = stream.next_delta(&shadow);
            shadow.apply(&delta).expect("stream deltas apply");
            coordinator.stage(delta);
            coordinator.commit().expect("batch commits cleanly");
            coordinator.publish();
        }
        let per_shard: Vec<u64> = (0..shards).map(|i| coordinator.shard_epoch(i)).collect();
        // The kill must actually land *between* shard checkpoints: routing
        // is uneven, so at least one shard is sitting on an un-checkpointed
        // WAL suffix while another just snapshotted.
        assert!(
            (0..shards).any(|i| coordinator.shard_wal_record_bytes(i) > 0),
            "every shard happened to be exactly checkpointed; weaken the policy"
        );
        assert_eq!(coordinator.epoch(), per_shard.iter().sum::<u64>());
        (coordinator.epoch(), per_shard, shadow)
        // Drop without checkpoint_now(): the simulated kill.
    };

    let (handle, mut recovered) =
        serve_sharded_from_dir(&root, config(), policy).expect("sharded recovery");
    let recovered_per_shard: Vec<u64> = (0..shards).map(|i| recovered.shard_epoch(i)).collect();
    assert_eq!(
        recovered_per_shard, per_shard_epochs,
        "per-shard WAL replay must restore the exact pre-kill epochs"
    );
    assert_eq!(recovered.epoch(), pre_epoch);
    assert_eq!(handle.epoch(), pre_epoch);

    let view = handle.current();
    view.verify_consistency().expect("recovered view");
    assert_matches_fresh_build(&view, &shadow, "recovered");

    // The recovered coordinator keeps serving: one more mutation routes,
    // commits, and publishes.
    let delta = LakeDelta::new().add_table(table("post_crash", "code", &["USD", "CHF"]));
    recovered
        .apply_and_publish(delta)
        .expect("post-recovery mutation");
    assert!(recovered.epoch() > pre_epoch);
    assert!(handle
        .current()
        .table_names()
        .contains(&"post_crash".to_owned()));

    drop(recovered);
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn rebalance_intent_left_by_a_crash_is_completed_on_recovery() {
    let root = test_dir("intent");
    dn_store::write_shard_manifest(&root, 2).expect("manifest");

    // Shard 0 holds its anchor plus `mover`; shard 1 holds its anchor
    // *and* `mover` too — the crash state where the migration's
    // add-to-target landed but the remove-from-source did not.
    let mut lake0 = MutableLake::new();
    lake0
        .apply(
            &LakeDelta::new()
                .add_table(table("anchor0", "city", &["Memphis", "Austin"]))
                .add_table(table("mover", "code", &["USD", "EUR"])),
        )
        .expect("shard 0 lake");
    let mut lake1 = MutableLake::new();
    lake1
        .apply(
            &LakeDelta::new()
                .add_table(table("anchor1", "animal", &["Okapi", "Zebra"]))
                .add_table(table("mover", "code", &["USD", "EUR"])),
        )
        .expect("shard 1 lake");
    for (i, lake) in [lake0, lake1].into_iter().enumerate() {
        let (_, writer) = serve_durable(
            lake,
            config(),
            dn_store::shard_dir(&root, i),
            CheckpointPolicy::manual(),
        )
        .expect("shard store");
        drop(writer); // simulated kill
    }
    dn_store::write_rebalance_intent(
        &root,
        &dn_store::RebalanceIntent {
            moves: vec![dn_store::TableMove {
                table: "mover".to_owned(),
                from: 0,
                to: 1,
            }],
        },
    )
    .expect("intent");

    let (handle, recovered) =
        serve_sharded_from_dir(&root, config(), CheckpointPolicy::manual()).expect("recovery");
    assert!(
        dn_store::read_rebalance_intent(&root)
            .expect("intent readable")
            .is_none(),
        "recovery must clear the completed intent"
    );
    assert_eq!(recovered.table_owner("mover"), Some(1));
    assert!(!recovered.shard_live_tables(0).contains(&"mover".to_owned()));
    assert!(recovered.shard_live_tables(1).contains(&"mover".to_owned()));

    // The finished state equals a fresh build of the three live tables.
    let mut expected = MutableLake::new();
    expected
        .apply(
            &LakeDelta::new()
                .add_table(table("anchor0", "city", &["Memphis", "Austin"]))
                .add_table(table("anchor1", "animal", &["Okapi", "Zebra"]))
                .add_table(table("mover", "code", &["USD", "EUR"])),
        )
        .expect("expected lake");
    let view = handle.current();
    view.verify_consistency().expect("recovered view");
    assert_matches_fresh_build(&view, &expected, "intent recovery");

    drop(recovered);
    std::fs::remove_dir_all(&root).expect("cleanup");
}
