//! Crash-recovery equivalence for the durable serving engine.
//!
//! Two suites:
//!
//! * `kill_and_recover_*` — the acceptance scenario: a durable writer on
//!   the seeded SB workload is dropped mid-stream after K committed
//!   batches; `serve_from_dir` recovers, and the recovered top-k rankings
//!   for all five golden-corpus measures (LCC, LCC(attr), exact BC, and
//!   the seeded approx-BC — see `tests/golden_rankings.rs`) must match the
//!   uninterrupted run within 1e-9, with ids and edges exactly equal.
//! * `random_checkpoint_recovery_equivalence` — the property: for seeded
//!   random lakes and mutation streams, with checkpoints taken at random
//!   points, recovery after a kill at an arbitrary step equals the
//!   uninterrupted run — exact on value ids and edges, 1e-9 on scores —
//!   and the recovered writer keeps serving correctly afterwards.
//!
//! Temp directories live under `CARGO_TARGET_TMPDIR` (the CI hygiene gate
//! fails if anything is left behind).

use std::path::PathBuf;

use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use dn_graph::approx_bc::{ApproxBcConfig, SamplingStrategy};
use dn_graph::lcc::LccMethod;
use dn_service::{
    serve, serve_durable, serve_from_dir, CheckpointPolicy, ServiceConfig, ServiceHandle, Writer,
};
use domainnet_suite::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random table over overlapping vocabularies, in the `base_*`
/// namespace (disjoint from `MutationStream`'s generated names).
fn random_base_table(rng: &mut StdRng, index: usize) -> lake::Table {
    const POOLS: &[(&str, &[&str])] = &[
        ("animal", &["Jaguar", "Puma", "Panda", "Lemur", "Okapi"]),
        ("brand", &["Jaguar", "Puma", "Fiat", "Toyota", "Rover"]),
        ("city", &["Memphis", "Sydney", "Austin", "Phoenix"]),
    ];
    let mut builder = lake::table::TableBuilder::new(format!("base_{index}"));
    let n_cols = rng.gen_range(1..=POOLS.len());
    let rows = rng.gen_range(2..=6usize);
    for (col, pool) in POOLS.iter().take(n_cols) {
        let cells: Vec<String> = (0..rows)
            .map(|_| pool[rng.gen_range(0..pool.len())].to_owned())
            .collect();
        builder = builder.column(*col, cells);
    }
    builder.build().expect("rectangular by construction")
}

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dn_store_recovery_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The five golden-corpus measures (`tests/golden_rankings.rs`): LCC and
/// exact BC on the running example, LCC(attr), and SB's LCC + seeded
/// approx BC — four distinct `Measure` values once the shared LCC is
/// deduplicated.
fn golden_measures() -> Vec<Measure> {
    vec![
        Measure::lcc(),
        Measure::Lcc(LccMethod::AttributeJaccard),
        Measure::exact_bc(),
        Measure::ApproxBc(ApproxBcConfig {
            samples: 512,
            strategy: SamplingStrategy::Uniform,
            seed: 2021,
        }),
    ]
}

fn config(measures: Vec<Measure>, prune: bool) -> ServiceConfig {
    ServiceConfig {
        measures,
        cache_capacity: 8,
        prune_single_attribute_values: prune,
        threads: 1,
    }
}

/// Assert two engines hold the same state: exact on ids and edges (CSR
/// arrays and interner compared verbatim), 1e-9 on every score of every
/// served measure, identical ranked orders.
fn assert_engines_equal(
    label: &str,
    reference: (&ServiceHandle, &Writer),
    recovered: (&ServiceHandle, &Writer),
    measures: &[Measure],
) {
    let (ref_service, ref_writer) = reference;
    let (rec_service, rec_writer) = recovered;

    // Ids: the interners must agree entry by entry.
    let (a, b) = (ref_writer.lake().interner(), rec_writer.lake().interner());
    assert_eq!(a.len(), b.len(), "{label}: interned value counts");
    for ((id_a, v_a), (id_b, v_b)) in a.iter().zip(b.iter()) {
        assert_eq!(id_a, id_b, "{label}");
        assert_eq!(v_a, v_b, "{label}: value id {id_a:?}");
    }
    // Edges: the CSR graphs must agree verbatim.
    let (ga, gb) = (ref_writer.net().graph(), rec_writer.net().graph());
    assert_eq!(ga.csr_offsets(), gb.csr_offsets(), "{label}: CSR offsets");
    assert_eq!(
        ga.csr_adjacency(),
        gb.csr_adjacency(),
        "{label}: CSR adjacency"
    );
    assert_eq!(ga.value_labels(), gb.value_labels(), "{label}");

    // Scores: every served measure, whole ranking, 1e-9.
    let (ref_snap, rec_snap) = (ref_service.current(), rec_service.current());
    rec_snap.verify_consistency().unwrap();
    for &measure in measures {
        let a = ref_snap.ranking(measure).unwrap();
        let b = rec_snap.ranking(measure).unwrap();
        assert_eq!(a.len(), b.len(), "{label}: {measure:?} ranking sizes");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.value, y.value, "{label}: {measure:?} order");
            assert!(
                (x.score - y.score).abs() < 1e-9,
                "{label}: {measure:?} {} scored {} vs {}",
                x.value,
                x.score,
                y.score
            );
            assert_eq!(x.attribute_count, y.attribute_count, "{label}");
            assert_eq!(x.cardinality, y.cardinality, "{label}");
        }
    }
}

#[test]
fn kill_and_recover_matches_uninterrupted_run_on_golden_measures() {
    let dir = test_dir("golden");
    let measures = golden_measures();
    let sb = SbGenerator::with_config(SbConfig {
        seed: 2021,
        rows_per_table: 60,
    })
    .generate();
    let lake = MutableLake::from_catalog(&sb.catalog);

    let (ref_service, mut ref_writer) = serve(lake.clone(), config(measures.clone(), true));
    let (dur_service, mut dur_writer) = serve_durable(
        lake,
        config(measures.clone(), true),
        &dir,
        CheckpointPolicy::every_epochs(2),
    )
    .unwrap();

    // K committed batches, identically applied to both engines; the
    // every-2-epochs policy leaves a snapshot *and* a WAL suffix behind.
    let k = 5;
    let mut stream = MutationStream::new(MutationConfig {
        seed: 7,
        rows_per_table: 40,
        ..MutationConfig::default()
    });
    for _ in 0..k {
        let delta = stream.next_delta(dur_writer.lake());
        dur_writer.apply_and_publish(delta.clone()).unwrap();
        ref_writer.apply_and_publish(delta).unwrap();
    }
    assert!(
        dur_writer.wal_record_bytes() > 0,
        "the kill must catch un-checkpointed batches"
    );
    let killed_epoch = dur_writer.epoch();
    drop(dur_writer); // kill mid-stream
    drop(dur_service);

    let (rec_service, mut rec_writer) = serve_from_dir(
        &dir,
        config(measures.clone(), true),
        CheckpointPolicy::every_epochs(2),
    )
    .unwrap();
    assert_eq!(rec_writer.epoch(), killed_epoch, "epoch numbering resumes");
    assert_engines_equal(
        "after recovery",
        (&ref_service, &ref_writer),
        (&rec_service, &rec_writer),
        &measures,
    );

    // Recovered readers answer the acceptance query: top-20 per measure.
    let reader = rec_service.reader();
    for &measure in &measures {
        let top = reader.top_k(measure, 20).unwrap();
        assert!(!top.is_empty(), "{measure:?}");
    }

    // The recovered engine is fully live: one more identical batch keeps
    // the two lineages equal.
    let delta = stream.next_delta(rec_writer.lake());
    rec_writer.apply_and_publish(delta.clone()).unwrap();
    ref_writer.apply_and_publish(delta).unwrap();
    assert_engines_equal(
        "after post-recovery mutation",
        (&ref_service, &ref_writer),
        (&rec_service, &rec_writer),
        &measures,
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn random_checkpoint_recovery_equivalence() {
    let sequences = 10u64;
    for seq in 0..sequences {
        let mut rng = StdRng::seed_from_u64(0x0005_709E + seq);
        let dir = test_dir(&format!("prop_{seq}"));
        let measures = vec![Measure::lcc(), Measure::exact_bc()];
        let prune = seq % 2 == 0;

        // Random base lake (names disjoint from the stream's `mut_table_*`
        // namespace so re-adds never collide).
        let mut base = MutableLake::new();
        for i in 0..rng.gen_range(2..=4usize) {
            base.apply(&LakeDelta::new().add_table(random_base_table(&mut rng, i)))
                .unwrap();
        }

        let (ref_service, mut ref_writer) = serve(base.clone(), config(measures.clone(), prune));
        let (_dur_service, mut dur_writer) = serve_durable(
            base,
            config(measures.clone(), prune),
            &dir,
            CheckpointPolicy::manual(),
        )
        .unwrap();

        // A churny stream (base tables removable) with checkpoints at
        // random points, killed after a random number of batches.
        let mut stream = MutationStream::new(MutationConfig {
            seed: 2000 + seq,
            rows_per_table: 8,
            touch_base_tables: true,
            ..MutationConfig::default()
        });
        let steps = rng.gen_range(3..=6usize);
        for _ in 0..steps {
            let delta = stream.next_delta(dur_writer.lake());
            dur_writer.apply_and_publish(delta.clone()).unwrap();
            ref_writer.apply_and_publish(delta).unwrap();
            if rng.gen_bool(0.4) {
                assert!(dur_writer.checkpoint_now().unwrap(), "seq {seq}");
            }
        }
        drop(dur_writer); // kill

        let (rec_service, mut rec_writer) = serve_from_dir(
            &dir,
            config(measures.clone(), prune),
            CheckpointPolicy::manual(),
        )
        .unwrap();
        assert_engines_equal(
            &format!("seq {seq} after recovery"),
            (&ref_service, &ref_writer),
            (&rec_service, &rec_writer),
            &measures,
        );

        // Keep going after recovery.
        let delta = stream.next_delta(rec_writer.lake());
        rec_writer.apply_and_publish(delta.clone()).unwrap();
        ref_writer.apply_and_publish(delta).unwrap();
        assert_engines_equal(
            &format!("seq {seq} after post-recovery mutation"),
            (&ref_service, &ref_writer),
            (&rec_service, &rec_writer),
            &measures,
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn recovered_export_matches_golden_corpus_workflow() {
    // The ranking export rides the same snapshot machinery the golden
    // corpus uses: a recovered reader's CSV dump equals the uninterrupted
    // engine's dump byte for byte.
    let dir = test_dir("export");
    let measures = vec![Measure::lcc(), Measure::exact_bc()];
    let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
    let (ref_service, _ref_writer) = serve(lake.clone(), config(measures.clone(), false));
    let (_, mut dur_writer) = serve_durable(
        lake,
        config(measures.clone(), false),
        &dir,
        CheckpointPolicy::manual(),
    )
    .unwrap();
    dur_writer
        .apply_and_publish(LakeDelta::new().remove_table("T3"))
        .unwrap();
    let (_ref_service2, mut ref_writer2) = (ref_service.clone(), _ref_writer);
    ref_writer2
        .apply_and_publish(LakeDelta::new().remove_table("T3"))
        .unwrap();
    drop(dur_writer);

    let (rec_service, _rec_writer) = serve_from_dir(
        &dir,
        config(measures.clone(), false),
        CheckpointPolicy::manual(),
    )
    .unwrap();
    for &measure in &measures {
        let mut from_ref = Vec::new();
        let mut from_rec = Vec::new();
        ref_service
            .reader()
            .export_top_k_csv(measure, 10, &mut from_ref)
            .unwrap();
        rec_service
            .reader()
            .export_top_k_csv(measure, 10, &mut from_rec)
            .unwrap();
        assert_eq!(
            String::from_utf8(from_ref).unwrap(),
            String::from_utf8(from_rec).unwrap(),
            "{measure:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
