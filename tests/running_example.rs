//! End-to-end integration test on the paper's running example (Figure 1 /
//! Example 3.6), exercising the lake substrate, the graph engine, and the
//! DomainNet pipeline together.

use domainnet::pipeline::{DomainNet, DomainNetBuilder};
use domainnet::Measure;

#[test]
fn bc_separates_homographs_from_unambiguous_repeats() {
    let lake = lake::fixtures::running_example();
    let net = DomainNetBuilder::new()
        .prune_single_attribute_values(false)
        .build(&lake);

    let ranked = net.rank(Measure::exact_bc());
    // The two homographs occupy the top of the BC ranking among value nodes
    // that repeat; Jaguar (4 attributes, 2 meanings) is first overall.
    assert_eq!(ranked[0].value, "JAGUAR");
    let jaguar = DomainNet::score_of(&ranked, "JAGUAR").unwrap();
    let puma = DomainNet::score_of(&ranked, "PUMA").unwrap();
    let panda = DomainNet::score_of(&ranked, "PANDA").unwrap();
    let toyota = DomainNet::score_of(&ranked, "TOYOTA").unwrap();

    // Example 3.6 shape: BC(Jaguar) >> BC(Puma) > BC(Panda) ≈ BC(Toyota).
    assert!(jaguar.score > 3.0 * puma.score);
    assert!(puma.score >= panda.score);
    assert!(puma.score >= toyota.score);

    // Metadata carried on the scored values matches the lake.
    assert_eq!(jaguar.attribute_count, 4);
    assert_eq!(puma.attribute_count, 2);
}

#[test]
fn pruning_reduces_the_graph_but_keeps_all_candidates() {
    let lake = lake::fixtures::running_example();
    let pruned = DomainNetBuilder::new().build(&lake);
    let unpruned = DomainNetBuilder::new()
        .prune_single_attribute_values(false)
        .build(&lake);

    assert!(pruned.candidate_count() < unpruned.candidate_count());
    assert_eq!(pruned.candidate_count(), 4);
    // Every candidate of the pruned graph is present in the unpruned ranking
    // too, and the relative order of the candidates is the same.
    let pruned_rank: Vec<String> = pruned
        .rank(Measure::exact_bc())
        .into_iter()
        .map(|s| s.value)
        .collect();
    let unpruned_rank: Vec<String> = unpruned
        .rank(Measure::exact_bc())
        .into_iter()
        .map(|s| s.value)
        .filter(|v| pruned_rank.contains(v))
        .collect();
    assert_eq!(pruned_rank[0], unpruned_rank[0], "Jaguar first in both");
}

#[test]
fn lcc_gives_jaguar_the_lowest_score_among_repeats() {
    // Example 3.6 computes LCC on the full (unpruned) graph of Figure 1.
    let lake = lake::fixtures::running_example();
    let net = DomainNetBuilder::new()
        .prune_single_attribute_values(false)
        .build(&lake);
    let ranked = net.rank(Measure::lcc());
    let score = |v: &str| {
        ranked
            .iter()
            .find(|s| s.value == v)
            .map(|s| s.score)
            .expect("value present")
    };
    // The 4-attribute homograph has the lowest LCC among the repeated values.
    assert!(score("JAGUAR") < score("PANDA"));
    assert!(score("JAGUAR") < score("TOYOTA"));
    assert!(score("JAGUAR") < score("PUMA"));
}

#[test]
fn approx_bc_agrees_with_exact_on_small_graphs() {
    let lake = lake::fixtures::running_example();
    let net = DomainNetBuilder::new()
        .prune_single_attribute_values(false)
        .build(&lake);
    let exact: Vec<String> = net
        .rank(Measure::exact_bc())
        .into_iter()
        .take(4)
        .map(|s| s.value)
        .collect();
    let approx: Vec<String> = net
        .rank(Measure::approx_bc(net.graph().node_count(), 5))
        .into_iter()
        .take(4)
        .map(|s| s.value)
        .collect();
    assert_eq!(exact, approx);
}
