//! The replication property: 30 seeded runs of random mutation traffic
//! against a durable sharded primary, with one to three followers joining
//! and leaving at random epochs, must end with **every surviving follower
//! bit-identical to the primary** — `to_bits` equality on every ranking
//! entry of all four golden-corpus measures (LCC, LCC(attr), exact BC,
//! and the seeded approx BC — see `tests/golden_rankings.rs`), exact
//! per-shard identity counts, and zero divergences flagged.
//!
//! Approx BC makes this a strict lockstep test: its sampler is salted by
//! the net's delta generation, so bit-equality holds only because a
//! follower restores the primary's exported generation from the bootstrap
//! snapshot and then advances it through the *same* incremental apply
//! path, delta for delta. Any shortcut — rebuilding instead of replaying,
//! skipping a batch, resyncing on the quiet — shows up as a score-bit
//! mismatch here (and as a digest mismatch in the insurance exchange).
//!
//! Followers join at random epochs (fresh bootstrap, or local recovery
//! over the directory a departed follower left behind), leave by being
//! dropped mid-stream without a final checkpoint, and sync at random
//! cadences — so some joins land after the primary's checkpoint cadence
//! has trimmed the WAL suffix they need, exercising the
//! `SnapshotRequired` re-bootstrap path.
//!
//! Temp directories live under `CARGO_TARGET_TMPDIR` (the CI hygiene gate
//! fails if anything is left behind).

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use datagen::mutate::{MutationConfig, MutationStream};
use dn_graph::approx_bc::{ApproxBcConfig, SamplingStrategy};
use dn_graph::lcc::LccMethod;
use dn_service::{
    serve_sharded_durable, CheckpointPolicy, Coordinator, Follower, LocalReplicaSource,
    ServiceConfig,
};
use domainnet::Measure;
use lake::delta::MutableLake;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RUNS: usize = 30;
const STEPS: usize = 10;
const SHARDS: usize = 2;

/// The four golden-corpus measures (`tests/golden_rankings.rs`), approx
/// BC included: replication must preserve even seeded-sampler scores bit
/// for bit.
fn golden_measures() -> Vec<Measure> {
    vec![
        Measure::lcc(),
        Measure::Lcc(LccMethod::AttributeJaccard),
        Measure::exact_bc(),
        Measure::ApproxBc(ApproxBcConfig {
            samples: 512,
            strategy: SamplingStrategy::Uniform,
            seed: 2021,
        }),
    ]
}

fn config() -> ServiceConfig {
    ServiceConfig {
        measures: golden_measures(),
        cache_capacity: 8,
        prune_single_attribute_values: true,
        threads: 1,
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dn_replica_prop_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small random table over overlapping vocabularies, in the `base_*`
/// namespace (disjoint from `MutationStream`'s generated names).
fn random_base_table(rng: &mut StdRng, index: usize) -> lake::Table {
    const POOLS: &[(&str, &[&str])] = &[
        ("animal", &["Jaguar", "Puma", "Panda", "Lemur", "Okapi"]),
        ("brand", &["Jaguar", "Puma", "Fiat", "Toyota", "Rover"]),
        ("city", &["Memphis", "Sydney", "Austin", "Phoenix"]),
    ];
    let mut builder = lake::table::TableBuilder::new(format!("base_{index}"));
    let n_cols = rng.gen_range(1..=POOLS.len());
    let rows = rng.gen_range(2..=6usize);
    for (col, pool) in POOLS.iter().take(n_cols) {
        let cells: Vec<String> = (0..rows)
            .map(|_| pool[rng.gen_range(0..pool.len())].to_owned())
            .collect();
        builder = builder.column(*col, cells);
    }
    builder.build().expect("rectangular by construction")
}

#[test]
fn thirty_seeded_runs_with_churning_followers_end_bit_identical() {
    for run in 0..RUNS {
        let seed = 11_000 + run as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let context = format!("run {run}");
        let root = test_dir(&format!("{run}"));

        let mut base = MutableLake::new();
        let n_tables = rng.gen_range(3..=5);
        for i in 0..n_tables {
            let table = random_base_table(&mut rng, i);
            base.apply(&lake::delta::LakeDelta::new().add_table(table))
                .expect("base table applies");
        }

        // A short checkpoint cadence on the primary so late joiners (and
        // followers that slept through it) hit the WAL-trimmed path.
        let (handle, coordinator) = serve_sharded_durable(
            base.clone(),
            config(),
            root.join("primary"),
            CheckpointPolicy::every_epochs(3),
            SHARDS,
        )
        .unwrap_or_else(|e| panic!("{context}: fresh sharded primary: {e}"));
        let primary: Arc<Mutex<Coordinator>> = Arc::new(Mutex::new(coordinator));
        let source = LocalReplicaSource::new(handle.clone(), Arc::clone(&primary));
        let mut stream = MutationStream::new(MutationConfig {
            seed,
            tables_per_delta: 2,
            rows_per_table: 8,
            ..MutationConfig::default()
        });
        let mut shadow = base;

        let follower_count = rng.gen_range(1..=3usize);
        let mut followers: Vec<Option<Follower>> = (0..follower_count).map(|_| None).collect();
        let follower_dir = |slot: usize| root.join(format!("follower_{slot}"));

        for _step in 0..STEPS {
            let delta = stream.next_delta(&shadow);
            shadow.apply(&delta).expect("stream deltas apply");
            primary
                .lock()
                .unwrap()
                .apply_and_publish(delta)
                .unwrap_or_else(|e| panic!("{context}: primary applies: {e}"));

            for (slot, entry) in followers.iter_mut().enumerate() {
                match entry {
                    present @ Some(_) => {
                        if rng.gen_range(0..10) < 2 {
                            // Leave: dropped mid-stream, no final
                            // checkpoint — its directory stays behind for
                            // a later rejoin to recover from.
                            *present = None;
                        } else if rng.gen_range(0..10) < 6 {
                            let report = present
                                .as_mut()
                                .expect("present")
                                .sync_once(&source)
                                .unwrap_or_else(|e| panic!("{context} slot {slot}: sync: {e}"));
                            assert_eq!(report.lag_epochs, 0, "{context} slot {slot}");
                        }
                    }
                    absent => {
                        if rng.gen_range(0..10) < 3 {
                            // Join at this epoch: a fresh bootstrap, or
                            // local recovery over whatever a departed
                            // follower left on disk.
                            let follower = Follower::bootstrap(
                                follower_dir(slot),
                                config(),
                                CheckpointPolicy::manual(),
                                &source,
                            )
                            .unwrap_or_else(|e| panic!("{context} slot {slot}: join: {e}"));
                            *absent = Some(follower);
                        }
                    }
                }
            }
        }

        // Quiesce: every surviving follower drains the tail once the
        // primary has stopped mutating...
        let survivors: Vec<(usize, &mut Follower)> = followers
            .iter_mut()
            .enumerate()
            .filter_map(|(slot, f)| f.as_mut().map(|f| (slot, f)))
            .collect();
        assert!(
            !survivors.is_empty() || follower_count > 0,
            "{context}: churn schedule produced no survivors to check"
        );
        for (slot, follower) in survivors {
            let label = format!("{context} slot {slot}");
            let report = follower
                .sync_once(&source)
                .unwrap_or_else(|e| panic!("{label}: final sync: {e}"));
            assert_eq!(report.lag_epochs, 0, "{label}: drained");
            assert_eq!(
                report.checked_shards, SHARDS,
                "{label}: insurance verified every shard"
            );
            assert_eq!(follower.shared().divergence_total(), 0, "{label}");
            assert_eq!(follower.shared().halted(), None, "{label}");

            // ...and agrees with the primary bit for bit: identity counts
            // per shard, and every ranking entry of every golden measure
            // down to raw score bits — approx BC's generation-salted
            // sampler included.
            let primary_view = handle.current();
            let follower_view = follower.handle().current();
            follower_view
                .verify_consistency()
                .unwrap_or_else(|e| panic!("{label}: follower view: {e}"));
            assert_eq!(primary_view.epoch(), follower_view.epoch(), "{label}");
            for shard in 0..SHARDS {
                let (p, f) = (
                    primary_view.shard(shard).stats(),
                    follower_view.shard(shard).stats(),
                );
                assert_eq!(p.value_nodes, f.value_nodes, "{label} shard {shard}");
                assert_eq!(
                    p.attribute_nodes, f.attribute_nodes,
                    "{label} shard {shard}"
                );
                assert_eq!(p.edge_count, f.edge_count, "{label} shard {shard}");
                assert_eq!(
                    p.live_candidates, f.live_candidates,
                    "{label} shard {shard}"
                );
                assert_eq!(
                    p.component_count, f.component_count,
                    "{label} shard {shard}"
                );
            }
            for measure in golden_measures() {
                let merged_p = primary_view
                    .top_k(measure, usize::MAX)
                    .expect("served measure");
                let merged_f = follower_view
                    .top_k(measure, usize::MAX)
                    .expect("served measure");
                assert_eq!(merged_p.len(), merged_f.len(), "{label} {measure:?}");
                for (p, f) in merged_p.iter().zip(&merged_f) {
                    assert_eq!(p.value, f.value, "{label} {measure:?}");
                    assert_eq!(
                        p.score.to_bits(),
                        f.score.to_bits(),
                        "{label} {measure:?}: {} scored {} on the primary vs {} on the follower",
                        p.value,
                        p.score,
                        f.score
                    );
                }
            }
        }

        std::fs::remove_dir_all(&root).expect("scratch cleanup");
    }
}
