//! Reproducibility: every stage of the system — generators, graph
//! construction, sampling, injection — is deterministic under a fixed seed,
//! so experiment numbers can be regenerated exactly.

use datagen::inject::{inject_homographs, remove_homographs, InjectionConfig};
use datagen::sb::SbGenerator;
use datagen::tus::{TusConfig, TusGenerator};
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;

#[test]
fn full_sb_pipeline_is_deterministic() {
    let run = || {
        let generated = SbGenerator::new(5).generate();
        let net = DomainNetBuilder::new().build(&generated.catalog);
        net.rank(Measure::approx_bc(500, 9))
            .into_iter()
            .take(40)
            .map(|s| (s.value, s.score.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_produce_different_lakes_but_same_schema() {
    let a = SbGenerator::new(1).generate();
    let b = SbGenerator::new(2).generate();
    assert_eq!(a.catalog.table_count(), b.catalog.table_count());
    assert_eq!(a.catalog.attribute_count(), b.catalog.attribute_count());
    // Content differs (emails, SKUs, and numeric columns are seed-dependent).
    assert_ne!(a.catalog.value_count(), b.catalog.value_count());
}

#[test]
fn tus_injection_pipeline_is_deterministic() {
    let run = || {
        let generated = TusGenerator::new(TusConfig::small(55)).generate();
        let clean = remove_homographs(&generated);
        let injected = inject_homographs(
            &clean,
            InjectionConfig {
                count: 10,
                meanings: 3,
                min_attr_cardinality: 20,
                seed: 3,
            },
        )
        .expect("injection succeeds");
        let net = DomainNetBuilder::new().build(&injected.lake.catalog);
        net.rank(Measure::approx_bc(300, 4))
            .into_iter()
            .take(20)
            .map(|s| s.value)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
