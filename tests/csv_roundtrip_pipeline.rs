//! The full file-based workflow: write a generated lake to a directory of CSV
//! files, load it back with the from-scratch CSV reader, and verify the
//! DomainNet pipeline produces the same answers on the reloaded lake.

use std::fs;
use std::path::PathBuf;

use datagen::sb::SbGenerator;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use lake::loader::{load_dir, save_dir, LoadOptions};

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("domainnet_roundtrip_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn csv_round_trip_preserves_the_homograph_ranking() {
    let dir = temp_dir("sb");
    let generated = SbGenerator::new(77).generate();

    save_dir(&generated.catalog, &dir).expect("write lake as CSV");
    let reloaded = load_dir(&dir, LoadOptions::default()).expect("reload lake from CSV");

    assert_eq!(reloaded.table_count(), generated.catalog.table_count());
    assert_eq!(
        reloaded.attribute_count(),
        generated.catalog.attribute_count()
    );
    assert_eq!(reloaded.value_count(), generated.catalog.value_count());

    // The ranking over the reloaded lake matches the in-memory one: same
    // candidates, same top of the list.
    let net_a = DomainNetBuilder::new().build(&generated.catalog);
    let net_b = DomainNetBuilder::new().build(&reloaded);
    assert_eq!(net_a.candidate_count(), net_b.candidate_count());
    assert_eq!(net_a.edge_count(), net_b.edge_count());

    let top_a: Vec<String> = net_a
        .rank(Measure::exact_bc())
        .into_iter()
        .take(25)
        .map(|s| s.value)
        .collect();
    let top_b: Vec<String> = net_b
        .rank(Measure::exact_bc())
        .into_iter()
        .take(25)
        .map(|s| s.value)
        .collect();
    assert_eq!(top_a, top_b);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn running_example_survives_a_round_trip_through_csv() {
    let dir = temp_dir("fig1");
    let lake = lake::fixtures::running_example();
    save_dir(&lake, &dir).unwrap();
    let reloaded = load_dir(&dir, LoadOptions::default()).unwrap();

    let net = DomainNetBuilder::new().build(&reloaded);
    let ranked = net.rank(Measure::exact_bc());
    assert_eq!(ranked[0].value, "JAGUAR");

    fs::remove_dir_all(&dir).unwrap();
}
