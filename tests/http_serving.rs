//! Wire-path test for the `dn-server` HTTP layer.
//!
//! Two suites:
//!
//! * `http_readers_stay_consistent_while_a_writer_posts` — the serving
//!   stress test, now over a real socket: N concurrent client threads
//!   issue top-k / score / explain / tables requests against an ephemeral
//!   server while one writer thread POSTs seeded mutation batches. Every
//!   response is checked for internal epoch consistency, per-client epoch
//!   monotonicity, and ranking order; afterwards the final `GET /v1/top-k`
//!   must agree with a from-scratch build of the final lake to 1e-9.
//! * `malformed_requests_answer_their_documented_status` — each abuse case
//!   (bad JSON, unknown route, wrong method, oversized body, truncated
//!   request, bad request line, chunked encoding, bad parameters) must
//!   yield exactly its documented status code *and leave the worker
//!   alive*, proven by a successful `/healthz` after every case.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use dn_server::api::{
    ExplainResponse, HealthResponse, MutationRequest, MutationResponse, ScoreResponse,
    TablesResponse, TopKResponse,
};
use dn_server::{percent_encode, serve_http, Client, Limits, Server, ServerConfig};
use dn_service::{serve_sharded, ServiceConfig};
use domainnet::{DomainNetBuilder, Measure};
use lake::delta::MutableLake;

const CLIENTS: usize = 4;
const BATCHES: usize = 12;
const DELTAS_PER_BATCH: usize = 2;

fn measures() -> Vec<Measure> {
    vec![Measure::lcc(), Measure::exact_bc()]
}

fn start_server(lake: MutableLake) -> Server {
    start_sharded_server(lake, 1)
}

fn start_sharded_server(lake: MutableLake, shards: usize) -> Server {
    let (service, coordinator) = serve_sharded(
        lake,
        ServiceConfig {
            measures: measures(),
            cache_capacity: 32,
            prune_single_attribute_values: true,
            threads: 1,
        },
        shards,
    );
    serve_http(
        service,
        coordinator,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            limits: Limits {
                max_head_bytes: 8 << 10,
                max_body_bytes: 64 << 10,
                read_timeout: Duration::from_secs(2),
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// One query-side client thread: mixed requests, asserting per-response
/// internal consistency and that observed epochs never move backwards.
fn client_loop(addr: SocketAddr, seed: u64, stop: Arc<AtomicBool>) -> u64 {
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let mut last_epoch = 0u64;
    let mut requests = 0u64;
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    while !stop.load(Ordering::Relaxed) {
        let epoch = match next() % 4 {
            0 => {
                let (measure, higher_first) = if next() % 2 == 0 {
                    ("bc", true)
                } else {
                    ("lcc", false)
                };
                let k = 5 + (next() % 20) as usize;
                let response = client
                    .get(&format!("/v1/top-k?measure={measure}&k={k}"))
                    .expect("top-k transport");
                assert_eq!(response.status, 200, "{}", response.body);
                let top: TopKResponse = response.json().expect("top-k json");
                assert!(top.results.len() <= k);
                for pair in top.results.windows(2) {
                    let ordered = if higher_first {
                        pair[0].score >= pair[1].score
                    } else {
                        pair[0].score <= pair[1].score
                    };
                    assert!(ordered, "{measure} ranking out of order");
                }
                // Same response, same epoch: the head of the ranking must
                // agree with a score card *from the same pinned snapshot*
                // semantics — verified via a follow-up request only when
                // the epoch did not advance in between.
                if let Some(head) = top.results.first() {
                    let card = client
                        .get(&format!("/v1/score/{}?k=1", percent_encode(&head.value)))
                        .expect("score transport");
                    // 404 is legal here: a mutation published after the
                    // top-k answer may have removed the value entirely.
                    assert!(card.status == 200 || card.status == 404, "{}", card.body);
                    if card.status == 200 {
                        let card: ScoreResponse = card.json().expect("score json");
                        if card.epoch == top.epoch {
                            let matching = card
                                .cards
                                .iter()
                                .find(|c| c.measure.name() == top.measure)
                                .expect("served measure has a card");
                            assert_eq!(matching.rank, 1, "top-1 must rank first");
                            assert_eq!(
                                matching.score.to_bits(),
                                head.score.to_bits(),
                                "same epoch, same value, same bits"
                            );
                        }
                        assert!(card.epoch >= top.epoch, "epochs move forward");
                    }
                }
                top.epoch
            }
            1 => {
                let response = client.get("/v1/tables").expect("tables transport");
                assert_eq!(response.status, 200);
                let tables: TablesResponse = response.json().expect("tables json");
                assert!(!tables.tables.is_empty(), "SB lake always has tables");
                tables.epoch
            }
            2 => {
                // Explain whatever currently tops BC (always a live value).
                let response = client
                    .get("/v1/top-k?measure=bc&k=1")
                    .expect("top-k transport");
                let top: TopKResponse = response.json().expect("top-k json");
                if let Some(head) = top.results.first() {
                    let response = client
                        .get(&format!("/v1/explain/{}", percent_encode(&head.value)))
                        .expect("explain transport");
                    // As above, the value may be gone by the time the
                    // explain request pins a newer epoch.
                    assert!(
                        response.status == 200 || response.status == 404,
                        "{}",
                        response.body
                    );
                    if response.status == 200 {
                        let explain: ExplainResponse = response.json().expect("explain json");
                        assert_eq!(explain.explanation.value, head.value);
                        assert_eq!(
                            explain.explanation.attribute_count,
                            explain.explanation.attributes.len()
                        );
                        assert!(explain.epoch >= top.epoch);
                    }
                }
                top.epoch
            }
            _ => {
                let response = client.get("/healthz").expect("healthz transport");
                assert_eq!(response.status, 200);
                let health: HealthResponse = response.json().expect("healthz json");
                health.epoch
            }
        };
        assert!(
            epoch >= last_epoch,
            "epoch went backwards over the wire: {last_epoch} -> {epoch}"
        );
        last_epoch = epoch;
        requests += 1;
    }
    requests
}

#[test]
fn http_readers_stay_consistent_while_a_writer_posts() {
    let base = SbGenerator::with_config(SbConfig {
        seed: 2021,
        rows_per_table: 30,
    })
    .generate();
    let lake = MutableLake::from_catalog(&base.catalog);
    let server = start_server(lake.clone());
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(addr, 1 + i as u64, stop))
        })
        .collect();

    // The writer client: seeded mutation batches over POST /v1/mutations,
    // mirrored into a shadow lake for the final from-scratch comparison.
    let mut shadow = lake;
    let mut writer_client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let mut stream = MutationStream::new(MutationConfig {
        seed: 77,
        tables_per_delta: 1,
        rows_per_table: 15,
        ..MutationConfig::default()
    });
    let mut last_published = 0u64;
    for _ in 0..BATCHES {
        let mut deltas = Vec::with_capacity(DELTAS_PER_BATCH);
        for _ in 0..DELTAS_PER_BATCH {
            let delta = stream.next_delta(&shadow);
            shadow.apply(&delta).expect("stream deltas apply to shadow");
            deltas.push(delta);
        }
        let body = serde_json::to_string(&MutationRequest { deltas }).unwrap();
        let response = writer_client
            .post_json("/v1/mutations", &body)
            .expect("mutation transport");
        assert_eq!(response.status, 200, "{}", response.body);
        let published: MutationResponse = response.json().expect("mutation json");
        assert!(
            published.epoch > last_published,
            "every batch publishes a fresh epoch"
        );
        last_published = published.epoch;
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_requests = 0;
    for handle in clients {
        total_requests += handle.join().expect("client thread panicked");
    }
    assert!(
        total_requests >= CLIENTS as u64,
        "every client completed at least one request"
    );
    assert_eq!(last_published, BATCHES as u64);

    // Final equivalence: the served ranking over HTTP vs a from-scratch
    // build of the shadow lake, per value to 1e-9 (node layout can differ,
    // so ties may reorder; compare scores by value like the stress test).
    let fresh = DomainNetBuilder::new().build(&shadow);
    let mut verify_client = Client::new(addr);
    for (param, measure) in [("lcc", Measure::lcc()), ("bc", Measure::exact_bc())] {
        let response = verify_client
            .get(&format!("/v1/top-k?measure={param}&k=100000"))
            .expect("final top-k transport");
        assert_eq!(response.status, 200);
        let served: TopKResponse = response.json().expect("final top-k json");
        assert_eq!(served.epoch, last_published, "no further epochs appeared");
        let rebuilt = fresh.rank_shared(measure);
        assert_eq!(
            served.results.len(),
            rebuilt.len(),
            "{measure:?}: candidate counts diverged"
        );
        let by_value: std::collections::HashMap<&str, &domainnet::ScoredValue> =
            rebuilt.iter().map(|s| (s.value.as_str(), s)).collect();
        for s in &served.results {
            let r = by_value
                .get(s.value.as_str())
                .unwrap_or_else(|| panic!("{measure:?}: {} missing from rebuild", s.value));
            assert!(
                (s.score - r.score).abs() < 1e-9,
                "{measure:?}: {} scored {} over HTTP vs {} rebuilt",
                s.value,
                s.score,
                r.score
            );
            assert_eq!(s.attribute_count, r.attribute_count, "{}", s.value);
            assert_eq!(s.cardinality, r.cardinality, "{}", s.value);
        }
    }

    // /metrics reflects the load that just ran.
    let metrics = verify_client.get("/metrics").expect("metrics transport");
    assert_eq!(metrics.status, 200);
    assert!(metrics.content_type.starts_with("text/plain"));
    assert!(metrics
        .body
        .contains("dn_http_requests_total{route=\"top_k\",class=\"2xx\"}"));
    assert!(metrics
        .body
        .contains("dn_http_requests_total{route=\"mutations\",class=\"2xx\"}"));
    assert!(metrics
        .body
        .contains(&format!("dn_server_epoch {last_published}")));
    assert!(metrics
        .body
        .contains("dn_http_request_duration_us_count{route=\"top_k\"}"));

    server.shutdown();
    let _coordinator = server.join();
}

#[test]
fn sharded_server_serves_merged_rankings_on_the_same_wire() {
    let base = SbGenerator::with_config(SbConfig {
        seed: 909,
        rows_per_table: 20,
    })
    .generate();
    let lake = MutableLake::from_catalog(&base.catalog);
    let server = start_sharded_server(lake.clone(), 2);
    let addr = server.local_addr();

    // Mutations over the same wire route through the coordinator.
    let mut shadow = lake;
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let mut stream = MutationStream::new(MutationConfig {
        seed: 31,
        tables_per_delta: 1,
        rows_per_table: 10,
        ..MutationConfig::default()
    });
    let mut last_epoch = 0u64;
    for _ in 0..6 {
        let delta = stream.next_delta(&shadow);
        shadow.apply(&delta).expect("stream deltas apply to shadow");
        let body = serde_json::to_string(&MutationRequest {
            deltas: vec![delta],
        })
        .unwrap();
        let response = client
            .post_json("/v1/mutations", &body)
            .expect("mutation transport");
        assert_eq!(response.status, 200, "{}", response.body);
        let published: MutationResponse = response.json().expect("mutation json");
        assert!(
            published.epoch > last_epoch,
            "coordinator epoch stays monotone across shards"
        );
        last_epoch = published.epoch;
    }

    // The merged ranking is indistinguishable from a from-scratch
    // single-engine build of the same lake (per value, to 1e-9).
    let fresh = DomainNetBuilder::new().build(&shadow);
    for (param, measure) in [("lcc", Measure::lcc()), ("bc", Measure::exact_bc())] {
        let response = client
            .get(&format!("/v1/top-k?measure={param}&k=100000"))
            .expect("top-k transport");
        assert_eq!(response.status, 200);
        let served: TopKResponse = response.json().expect("top-k json");
        assert_eq!(served.epoch, last_epoch);
        let rebuilt = fresh.rank_shared(measure);
        assert_eq!(served.results.len(), rebuilt.len(), "{measure:?}");
        let by_value: std::collections::HashMap<&str, &domainnet::ScoredValue> =
            rebuilt.iter().map(|s| (s.value.as_str(), s)).collect();
        for s in &served.results {
            let r = by_value
                .get(s.value.as_str())
                .unwrap_or_else(|| panic!("{measure:?}: {} missing from rebuild", s.value));
            assert!(
                (s.score - r.score).abs() < 1e-9,
                "{measure:?}: {} scored {} sharded vs {} rebuilt",
                s.value,
                s.score,
                r.score
            );
        }
    }

    // A score card carries the *global* rank: the head of the merged
    // LCC ranking must report rank 1 even though it lives on one shard.
    let head = client
        .get("/v1/top-k?measure=lcc&k=1")
        .expect("head transport");
    let head: TopKResponse = head.json().expect("head json");
    let top_value = head.results[0].value.clone();
    let card = client
        .get(&format!("/v1/score/{}", percent_encode(&top_value)))
        .expect("score transport");
    assert_eq!(card.status, 200, "{}", card.body);
    let card: ScoreResponse = card.json().expect("score json");
    let lcc_card = card
        .cards
        .iter()
        .find(|c| c.measure == Measure::lcc())
        .expect("lcc card present");
    assert_eq!(lcc_card.rank, 1, "global rank of the merged head");

    // /metrics exposes the per-shard gauge families.
    let metrics = client.get("/metrics").expect("metrics transport");
    assert!(metrics.body.contains("dn_shard_epoch{shard=\"0\"}"));
    assert!(metrics.body.contains("dn_shard_epoch{shard=\"1\"}"));

    server.shutdown();
    server.join();
}

/// Send raw bytes, optionally half-close, and read whatever comes back.
fn raw_roundtrip(addr: SocketAddr, payload: &[u8], half_close: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(payload).expect("write");
    stream.flush().unwrap();
    if half_close {
        // Best-effort: the server may already have answered and closed
        // (e.g. a 400 for a garbage request line), which can surface as
        // ENOTCONN here — that's fine, the EOF signal is moot then.
        let _ = stream.shutdown(Shutdown::Write);
    }
    let mut buf = String::new();
    let _ = stream.read_to_string(&mut buf);
    buf
}

fn status_of(raw: &str) -> Option<u16> {
    raw.split(' ').nth(1)?.parse().ok()
}

#[test]
fn malformed_requests_answer_their_documented_status() {
    let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
    let server = start_server(lake);
    let addr = server.local_addr();
    let mut health_probe = Client::new(addr).with_timeout(Duration::from_secs(10));
    let mut assert_workers_alive = |context: &str| {
        let health = health_probe.get("/healthz").expect("healthz transport");
        assert_eq!(health.status, 200, "worker died after: {context}");
    };

    // Unknown route → 404.
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let response = client.get("/no/such/route").unwrap();
    assert_eq!(response.status, 404, "{}", response.body);
    assert!(response.body.contains("not_found"));
    assert_workers_alive("unknown route");

    // Wrong method on a known route → 405.
    let response = client.post_json("/v1/top-k", "{}").unwrap();
    assert_eq!(response.status, 405, "{}", response.body);
    assert_workers_alive("wrong method");

    // Bad JSON body → 400.
    let response = client.post_json("/v1/mutations", "{not json").unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("bad_request"));
    assert_workers_alive("bad JSON");

    // Structurally valid JSON, wrong schema → 400.
    let response = client.post_json("/v1/mutations", "{\"nope\": 1}").unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert_workers_alive("wrong schema");

    // Empty batch → 400.
    let response = client
        .post_json("/v1/mutations", "{\"deltas\": []}")
        .unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert_workers_alive("empty batch");

    // Decodable but structurally impossible table (dictionary index out
    // of range) → 400 from the validate_encoding re-check, not a panic
    // inside the engine.
    let impossible = concat!(
        "{\"deltas\":[{\"ops\":[{\"AddTable\":{\"name\":\"bad\",\"columns\":",
        "[{\"name\":\"c\",\"dictionary\":[\"A\"],\"indices\":[0,5],",
        "\"distinct\":[\"A\"]}]}}]}]}"
    );
    let response = client.post_json("/v1/mutations", impossible).unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("invalid table payload"));
    assert_workers_alive("impossible table encoding");

    // Unknown measure token → 400; recognized but unserved → 404.
    let response = client.get("/v1/top-k?measure=pagerank").unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    let response = client.get("/v1/top-k?measure=approx_bc").unwrap();
    assert_eq!(response.status, 404, "{}", response.body);
    // Garbage k → 400.
    let response = client.get("/v1/top-k?measure=bc&k=lots").unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert_workers_alive("bad parameters");

    // Unknown value / table → 404.
    let response = client.get("/v1/score/zzz-no-such-value").unwrap();
    assert_eq!(response.status, 404, "{}", response.body);
    let response = client.get("/v1/explain/zzz-no-such-value").unwrap();
    assert_eq!(response.status, 404, "{}", response.body);
    let response = client.get("/v1/tables/zzz-no-such-table").unwrap();
    assert_eq!(response.status, 404, "{}", response.body);
    assert_workers_alive("unknown entities");

    // Checkpoint on a non-durable server → 409.
    let response = client.post_json("/v1/admin/checkpoint", "").unwrap();
    assert_eq!(response.status, 409, "{}", response.body);
    assert!(response.body.contains("conflict"));
    assert_workers_alive("non-durable checkpoint");

    // Oversized body (Content-Length over the limit) → 413, without the
    // server reading the megabytes that were never sent.
    let raw = raw_roundtrip(
        addr,
        b"POST /v1/mutations HTTP/1.1\r\nHost: x\r\nContent-Length: 10485760\r\n\r\n",
        false,
    );
    assert_eq!(status_of(&raw), Some(413), "{raw}");
    assert_workers_alive("oversized body");

    // Truncated request: fewer bytes than Content-Length, then EOF → 400.
    let raw = raw_roundtrip(
        addr,
        b"POST /v1/mutations HTTP/1.1\r\nHost: x\r\nContent-Length: 500\r\n\r\n{\"del",
        true,
    );
    assert_eq!(status_of(&raw), Some(400), "{raw}");
    assert_workers_alive("truncated body");

    // Garbage request line → 400.
    let raw = raw_roundtrip(addr, b"GARBAGE\r\n\r\n", true);
    assert_eq!(status_of(&raw), Some(400), "{raw}");
    assert_workers_alive("garbage request line");

    // Oversized head → 431.
    let mut huge_head = Vec::from(&b"GET /healthz HTTP/1.1\r\nHost: x\r\n"[..]);
    huge_head.extend(std::iter::repeat(b'a').take(16 << 10));
    let raw = raw_roundtrip(addr, &huge_head, true);
    assert_eq!(status_of(&raw), Some(431), "{raw}");
    assert_workers_alive("oversized head");

    // Chunked transfer encoding → 501.
    let raw = raw_roundtrip(
        addr,
        b"POST /v1/mutations HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n",
        true,
    );
    assert_eq!(status_of(&raw), Some(501), "{raw}");
    assert_workers_alive("chunked encoding");

    // A bare connect-and-close must not kill anything either.
    drop(TcpStream::connect(addr).expect("connect"));
    assert_workers_alive("connect-and-close");

    // The malformed traffic landed in the 4xx counters.
    let metrics = client.get("/metrics").unwrap();
    assert!(metrics.body.contains("class=\"4xx\""), "{}", metrics.body);

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_and_join_returns_the_coordinator() {
    let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
    let server = start_server(lake);
    let addr = server.local_addr();

    // Shut down over HTTP like an operator would.
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let response = client.post_json("/v1/admin/shutdown", "").unwrap();
    assert_eq!(response.status, 200);
    assert!(server.is_shutting_down());

    let coordinator = server.join();
    assert_eq!(coordinator.epoch(), 0, "no mutations were posted");
    // New connections are refused or closed without an answer now.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(mut stream) = refused {
        let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        let mut buf = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.is_empty(), "drained server answered: {buf}");
    }
}
