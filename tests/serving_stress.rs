//! Concurrency stress test for the `dn-service` snapshot engine.
//!
//! One writer replays 200 seeded single-table mutations against an SB-style
//! lake, committed in batches and published as epochs, while 8 reader
//! threads continuously pin snapshots and interrogate them. Every reader
//! asserts that everything reachable from one pinned snapshot describes the
//! *same* state — scores, ranks, counts, cache answers — i.e. that no read
//! ever observes a mixture of epochs. After the writer finishes, the final
//! epoch must match a from-scratch build of the final lake to 1e-9.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use datagen::mutate::{MutationConfig, MutationStream};
use datagen::sb::{SbConfig, SbGenerator};
use dn_service::{serve, ServiceConfig};
use domainnet::{DomainNetBuilder, Measure};
use lake::delta::MutableLake;

const MUTATIONS: usize = 200;
const OPS_PER_DELTA: usize = 2;
const DELTAS_PER_EPOCH: usize = 4; // 4 deltas x 2 ops = 8 mutations per epoch
const READERS: usize = 8;

fn measures() -> Vec<Measure> {
    vec![Measure::lcc(), Measure::exact_bc()]
}

#[test]
fn readers_always_observe_consistent_epochs() {
    let base = SbGenerator::with_config(SbConfig {
        seed: 2021,
        rows_per_table: 40,
    })
    .generate();
    let lake = MutableLake::from_catalog(&base.catalog);
    let (service, mut writer) = serve(
        lake,
        ServiceConfig {
            measures: measures(),
            cache_capacity: 32,
            prune_single_attribute_values: true,
            threads: 1,
        },
    );

    let stop = Arc::new(AtomicBool::new(false));
    let max_epoch_seen = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let mut reader = service.reader();
            let stop = Arc::clone(&stop);
            let max_epoch_seen = Arc::clone(&max_epoch_seen);
            std::thread::spawn(move || -> (u64, u64) {
                let mut last_epoch = 0u64;
                let mut distinct_epochs = 1u64;
                let mut iterations = 0u64;
                loop {
                    let epoch = reader.pin();
                    assert!(
                        epoch >= last_epoch,
                        "epoch went backwards: {last_epoch} -> {epoch}"
                    );
                    let epoch_changed = epoch != last_epoch;
                    if epoch_changed {
                        distinct_epochs += 1;
                        last_epoch = epoch;
                    }
                    max_epoch_seen.fetch_max(epoch, Ordering::Relaxed);
                    let snap = Arc::clone(reader.snapshot());

                    // 1. Everything inside the snapshot cross-references.
                    //    The full O(candidates) sweep runs once per newly
                    //    observed epoch; the cheaper point checks below run
                    //    every iteration.
                    if iterations == 0 || epoch_changed {
                        snap.verify_consistency()
                            .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
                    }

                    // 2. The shared cache answers with this snapshot's data.
                    for &measure in snap.measures() {
                        let cached = reader.top_k(measure, 10).expect("served measure");
                        let ranking = snap.ranking(measure).expect("served measure");
                        assert_eq!(cached.len(), ranking.len().min(10));
                        for (c, r) in cached.iter().zip(ranking.iter()) {
                            assert_eq!(c.value, r.value, "epoch {epoch}: cache drifted");
                            assert_eq!(
                                c.score.to_bits(),
                                r.score.to_bits(),
                                "epoch {epoch}: cached score drifted for {}",
                                c.value
                            );
                        }
                        // 3. Point lookups agree with the ranking.
                        if let Some(head) = ranking.first() {
                            let card = snap
                                .score_card(measure, &head.value)
                                .expect("ranked value has a card");
                            assert_eq!(card.rank, 1, "epoch {epoch}");
                            assert_eq!(card.of, ranking.len(), "epoch {epoch}");
                            assert_eq!(card.score.to_bits(), head.score.to_bits());
                        }
                    }

                    // 4. Node counts come from the same graph the rankings
                    //    were extracted from.
                    let stats = snap.stats();
                    assert!(stats.live_candidates <= stats.value_nodes);
                    assert!(stats.node_count == stats.value_nodes + stats.attribute_nodes);

                    iterations += 1;
                    if stop.load(Ordering::Relaxed) {
                        return (iterations, distinct_epochs);
                    }
                }
            })
        })
        .collect();

    // The writer: 200 seeded mutations, batched through the staging queue.
    let mut stream = MutationStream::new(MutationConfig {
        seed: 77,
        tables_per_delta: OPS_PER_DELTA,
        rows_per_table: 20,
        ..MutationConfig::default()
    });
    // Deltas are generated against a shadow copy of the lake so that the
    // deltas inside one staged batch stay mutually consistent before the
    // writer applies them.
    let mut shadow = writer.lake().clone();
    let mut applied_ops = 0usize;
    while applied_ops < MUTATIONS {
        for _ in 0..DELTAS_PER_EPOCH {
            let delta = stream.next_delta(&shadow);
            applied_ops += delta.len();
            shadow.apply(&delta).expect("stream deltas apply to shadow");
            writer.stage(delta);
        }
        writer.commit().expect("batch commits cleanly");
        writer.publish();
    }
    stop.store(true, Ordering::Relaxed);

    let mut total_iterations = 0;
    for handle in readers {
        let (iterations, distinct) = handle.join().expect("reader thread panicked");
        assert!(iterations > 0, "reader never completed an iteration");
        assert!(distinct >= 1);
        total_iterations += iterations;
    }
    assert!(total_iterations >= READERS as u64);
    let published = service.epochs_published();
    assert!(
        published >= (MUTATIONS / (OPS_PER_DELTA * DELTAS_PER_EPOCH)) as u64,
        "writer published {published} epochs"
    );
    // At least one reader actually ran against a post-initial epoch while
    // the writer was mutating (on any scheduler this is overwhelmingly the
    // case; it guards against a degenerate always-epoch-0 run).
    assert!(
        max_epoch_seen.load(Ordering::Relaxed) > 0,
        "no reader ever observed a published epoch"
    );

    // Final equivalence: the served epoch must match a from-scratch build
    // of the final lake to 1e-9, value-by-value. Both served measures are
    // exact, so the incremental path has no estimation slack — but the two
    // graphs lay nodes out in different orders, so float summation order
    // (and therefore rank order among exact ties) can differ at the last
    // ulp; scores are compared per value, like `exp_incremental` does.
    let final_snap = service.current();
    final_snap.verify_consistency().unwrap();
    assert_eq!(final_snap.epoch(), writer.epoch());
    let fresh = DomainNetBuilder::new().build(writer.lake());
    for measure in measures() {
        let served = final_snap.ranking(measure).expect("served measure");
        let rebuilt = fresh.rank_shared(measure);
        assert_eq!(
            served.len(),
            rebuilt.len(),
            "{measure:?}: candidate counts diverged"
        );
        let by_value: std::collections::HashMap<&str, &domainnet::ScoredValue> =
            rebuilt.iter().map(|s| (s.value.as_str(), s)).collect();
        for s in served.iter() {
            let r = by_value
                .get(s.value.as_str())
                .unwrap_or_else(|| panic!("{measure:?}: {} missing from rebuild", s.value));
            assert!(
                (s.score - r.score).abs() < 1e-9,
                "{measure:?}: {} scored {} served vs {} rebuilt",
                s.value,
                s.score,
                r.score
            );
            assert_eq!(s.attribute_count, r.attribute_count, "{}", s.value);
            assert_eq!(s.cardinality, r.cardinality, "{}", s.value);
        }
    }
}
