//! End-to-end tests for `dn-trace` propagation across the serving stack.
//!
//! Three suites, all over real sockets:
//!
//! * `sharded_requests_build_one_contained_span_tree` — a mutation and a
//!   top-k against a 2-shard server (threads=1 so pool work is inline and
//!   strictly sequential) must each produce a single trace whose span tree
//!   covers route → coordinator → per-shard work, with every child span
//!   contained in its parent's interval and the root's duration at least
//!   the sum of the other spans' self-times.
//! * `http_sink_deliveries_forward_the_cycle_trace_id` — an ingest-style
//!   delivery made while a local trace is active must surface on the
//!   primary's ring as an `http` trace with the *same* ID, marked
//!   forwarded: the cross-process half of "one logical trace".
//! * `follower_tail_fetches_forward_the_sync_trace_id` — a follower's
//!   `sync_once` against an HTTP primary must leave `http` traces with the
//!   `replica_sync` trace's ID (forwarded) on the primary's ring.
//!
//! The sampling gate and the trace ring are process-global, so the suites
//! serialize on a local mutex and restore the disabled state on exit.

use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use dn_ingest::DeltaSink;
use dn_server::api::{MutationRequest, MutationResponse, TraceListResponse, TraceResponse};
use dn_server::{serve_http, Client, HttpReplicaSource, HttpSink, Limits, Server, ServerConfig};
use dn_service::{serve_sharded, serve_sharded_durable, CheckpointPolicy, Follower, ServiceConfig};
use domainnet::Measure;
use lake::delta::{LakeDelta, MutableLake};
use lake::table::TableBuilder;

static GLOBAL_TRACE_STATE: Mutex<()> = Mutex::new(());

/// Hold the global-state lock and force sampling back off on drop, so a
/// panicking suite cannot leak an enabled gate into the next one.
struct TraceStateGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl TraceStateGuard {
    fn sampling_every(n: u32) -> Self {
        let lock = GLOBAL_TRACE_STATE
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        dn_trace::set_sample_every(n);
        TraceStateGuard(lock)
    }
}

impl Drop for TraceStateGuard {
    fn drop(&mut self) {
        dn_trace::set_sample_every(0);
    }
}

fn config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        measures: vec![Measure::lcc(), Measure::exact_bc()],
        cache_capacity: 32,
        prune_single_attribute_values: true,
        threads,
    }
}

fn start_server(shards: usize, threads: usize) -> Server {
    let (service, coordinator) = serve_sharded(MutableLake::new(), config(threads), shards);
    serve_http(
        service,
        coordinator,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            limits: Limits::default(),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn homograph_batch() -> String {
    let request = MutationRequest {
        deltas: vec![
            LakeDelta::new().add_table(
                TableBuilder::new("zoo")
                    .column("animal", ["Jaguar", "Okapi", "Zebra"])
                    .build()
                    .expect("build table"),
            ),
            LakeDelta::new().add_table(
                TableBuilder::new("cars")
                    .column("make", ["Jaguar", "Fiat", "Kia"])
                    .build()
                    .expect("build table"),
            ),
        ],
    };
    serde_json::to_string(&request).expect("encode mutation")
}

/// Fetch the full span tree for `id` over the wire and run the structural
/// invariants every trace must satisfy: exactly one root, every child
/// contained in its parent's interval, and the root's duration at least
/// the sum of all other spans' self-times (exact partition only holds
/// when the pool is inline, i.e. threads=1).
fn fetch_and_check_tree(client: &mut Client, id: u64) -> TraceResponse {
    let hex = dn_trace::format_trace_id(id);
    let response = client
        .get(&format!("/v1/debug/traces/{hex}"))
        .expect("trace fetch");
    assert_eq!(response.status, 200, "{}", response.body);
    let trace: TraceResponse = response.json().expect("trace json");
    assert_eq!(trace.id, hex, "endpoint answers the requested ID");

    let by_id: HashMap<u64, _> = trace.spans.iter().map(|s| (s.id, s)).collect();
    let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    let root = roots[0];
    assert_eq!(root.id, 0, "root span has ID 0");
    assert_eq!(
        root.duration_us, trace.duration_us,
        "trace duration is the root's"
    );

    let mut child_self_total = 0u64;
    for span in &trace.spans {
        assert!(span.end_us >= span.start_us, "span interval is ordered");
        assert!(span.self_us <= span.duration_us, "self-time is a share");
        if let Some(parent) = span.parent {
            let parent = by_id.get(&parent).expect("parent span exists");
            assert!(
                span.start_us >= parent.start_us && span.end_us <= parent.end_us,
                "span {}/{} [{}, {}] escapes parent {} [{}, {}]",
                span.name,
                span.label,
                span.start_us,
                span.end_us,
                parent.name,
                parent.start_us,
                parent.end_us,
            );
            child_self_total += span.self_us;
        }
    }
    assert!(
        root.duration_us >= child_self_total,
        "root {}us < sum of child self-times {}us",
        root.duration_us,
        child_self_total,
    );
    trace
}

fn span_names(trace: &TraceResponse) -> HashSet<&str> {
    trace.spans.iter().map(|s| s.name.as_str()).collect()
}

#[test]
fn sharded_requests_build_one_contained_span_tree() {
    let _guard = TraceStateGuard::sampling_every(1);
    let server = start_server(2, 1);
    let mut client = Client::new(server.local_addr()).with_timeout(Duration::from_secs(10));

    // A sharded mutation: route → coordinator commit → per-shard apply
    // and publish, all under the ID echoed in X-Dn-Trace-Id.
    let response = client
        .post_json("/v1/mutations", &homograph_batch())
        .expect("mutation transport");
    assert_eq!(response.status, 200, "{}", response.body);
    let _: MutationResponse = response.json().expect("mutation json");
    let mutation_id = response
        .trace_id
        .expect("sampling=1 echoes a trace ID on every response");
    let tree = fetch_and_check_tree(&mut client, mutation_id);
    let names = span_names(&tree);
    for expected in ["route", "coord_commit", "shard_apply", "shard_publish"] {
        assert!(names.contains(expected), "mutation tree misses {expected}");
    }

    // A sharded top-k: route → scatter → one query span per shard → merge.
    let response = client
        .get("/v1/top-k?measure=bc&k=5")
        .expect("top-k transport");
    assert_eq!(response.status, 200, "{}", response.body);
    let topk_id = response.trace_id.expect("top-k is sampled too");
    let tree = fetch_and_check_tree(&mut client, topk_id);
    let names = span_names(&tree);
    for expected in ["route", "coord_scatter", "shard_query", "coord_merge"] {
        assert!(names.contains(expected), "top-k tree misses {expected}");
    }
    let shard_queries: HashSet<&str> = tree
        .spans
        .iter()
        .filter(|s| s.name == "shard_query")
        .map(|s| s.label.as_str())
        .collect();
    assert_eq!(
        shard_queries,
        HashSet::from(["shard0", "shard1"]),
        "both shards answered under the scatter"
    );
    assert_ne!(mutation_id, topk_id, "each request gets its own trace");

    // The list endpoint carries both summaries.
    let response = client
        .get("/v1/debug/traces?limit=100")
        .expect("list transport");
    assert_eq!(response.status, 200, "{}", response.body);
    let list: TraceListResponse = response.json().expect("list json");
    assert_eq!(list.sample_every, 1);
    for id in [mutation_id, topk_id] {
        let hex = dn_trace::format_trace_id(id);
        assert!(
            list.traces.iter().any(|t| t.id == hex),
            "recent-traces list misses {hex}"
        );
    }

    server.shutdown();
    server.join();
}

#[test]
fn http_sink_deliveries_forward_the_cycle_trace_id() {
    let _guard = TraceStateGuard::sampling_every(1);
    let server = start_server(1, 1);

    // Stand in for one ingest poll cycle: while its trace is active on
    // this thread, the sink's POST forwards the ID to the primary.
    let cycle = dn_trace::start_trace("ingest_poll", None).expect("sampling=1 always traces");
    let cycle_id = cycle.id();
    let mut sink = HttpSink::with_timeout(server.local_addr(), Duration::from_secs(10));
    let delta = LakeDelta::new().add_table(
        TableBuilder::new("zoo")
            .column("animal", ["Jaguar", "Okapi"])
            .build()
            .expect("build table"),
    );
    sink.deliver(1, &[delta]).expect("delivery applied");
    drop(cycle);

    // The server shares this process's ring, so the forwarded trace is
    // directly observable: an `http` trace under the cycle's own ID.
    let forwarded: Vec<_> = dn_trace::recent_traces(dn_trace::RING_CAPACITY)
        .into_iter()
        .filter(|t| t.id == cycle_id && t.name == "http")
        .collect();
    assert_eq!(
        forwarded.len(),
        1,
        "exactly one server-side trace carries the cycle ID"
    );
    assert!(forwarded[0].forwarded, "the server marks the ID forwarded");
    assert!(
        forwarded[0].label.contains("mutations"),
        "the forwarded trace is the delivery POST, got {:?}",
        forwarded[0].label,
    );

    server.shutdown();
    server.join();
}

#[test]
fn follower_tail_fetches_forward_the_sync_trace_id() {
    let _guard = TraceStateGuard::sampling_every(1);
    let scratch = std::env::temp_dir().join(format!(
        "dn_trace_propagation_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let primary_dir = scratch.join("primary");
    let follower_dir = scratch.join("follower");
    let _ = std::fs::remove_dir_all(&scratch);

    let (service, coordinator) = serve_sharded_durable(
        MutableLake::new(),
        config(1),
        &primary_dir,
        CheckpointPolicy::manual(),
        1,
    )
    .expect("durable primary");
    let server = serve_http(
        service,
        coordinator,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            limits: Limits::default(),
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    let mut client = Client::new(server.local_addr()).with_timeout(Duration::from_secs(10));
    let response = client
        .post_json("/v1/mutations", &homograph_batch())
        .expect("mutation transport");
    assert_eq!(response.status, 200, "{}", response.body);

    let source = HttpReplicaSource::with_timeout(server.local_addr(), Duration::from_secs(10));
    let mut follower = Follower::bootstrap(
        &follower_dir,
        config(1),
        CheckpointPolicy::manual(),
        &source,
    )
    .expect("bootstrap follower");
    follower.sync_once(&source).expect("clean sync");

    // The tail cycle's own trace is on the (shared) ring; every primary
    // fetch it made must appear as an `http` trace under the same ID.
    let traces = dn_trace::recent_traces(dn_trace::RING_CAPACITY);
    let sync = traces
        .iter()
        .find(|t| t.name == "replica_sync")
        .expect("sync_once published its trace");
    let forwarded: Vec<_> = traces
        .iter()
        .filter(|t| t.id == sync.id && t.name == "http")
        .collect();
    assert!(
        !forwarded.is_empty(),
        "no primary-side trace carries the sync ID {}",
        dn_trace::format_trace_id(sync.id),
    );
    assert!(
        forwarded.iter().all(|t| t.forwarded),
        "primary-side traces under the sync ID must be marked forwarded"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&scratch);
}
