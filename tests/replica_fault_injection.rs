//! Fault injection for WAL-shipping replication (`dn_service::replica`).
//!
//! Two suites:
//!
//! * `primary_killed_at_ten_seeded_points_follower_reconverges` — the
//!   acceptance scenario: a durable sharded primary under seeded mutation
//!   traffic is killed (dropped without a final checkpoint) at ten
//!   different points while a follower is mid-tail, restarted via
//!   `serve_sharded_from_dir`, and mutated further. The follower must
//!   reconnect, drain the suffix, and converge — bit-exact (`to_bits`)
//!   against the primary's merged rankings, exact on per-shard identity
//!   counts (nodes, edges, candidates, components), and within 1e-9 of a
//!   from-scratch build of the same lake — with zero divergences counted.
//! * `follower_killed_mid_apply_resumes_from_its_own_seq` — the follower
//!   side: a fault-injecting source cuts the link *between* per-shard WAL
//!   fetches, so the follower dies with one shard's records applied and
//!   the other's not. Re-bootstrapping over the same directory must
//!   recover locally (no snapshot re-download), resume from exactly the
//!   per-shard sequence numbers the WAL holds, and apply precisely the
//!   missed suffix — not the whole log.
//!
//! Both suites use the in-process `LocalReplicaSource`: the faults under
//! test are process deaths and stream cuts, which sockets would only make
//! nondeterministic. The HTTP transport is covered by `http_serving.rs`
//! and the `--smoke-replica` CI gate.
//!
//! Temp directories live under `CARGO_TARGET_TMPDIR` (the CI hygiene gate
//! fails if anything is left behind).

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use datagen::mutate::{MutationConfig, MutationStream};
use dn_service::{
    serve_sharded_durable, serve_sharded_from_dir, CheckpointPolicy, Coordinator, Follower,
    LocalReplicaSource, MultiView, ReplicaError, ReplicaSource, ServiceConfig, WalFetch,
};
use domainnet::{DomainNetBuilder, Measure};
use lake::delta::{LakeDelta, MutableLake};
use lake::table::TableBuilder;

const SHARDS: usize = 2;
const KILL_POINTS: usize = 10;

/// Both measures exact, so cross-engine agreement can be asserted to raw
/// score bits (no estimation slack).
fn measures() -> Vec<Measure> {
    vec![Measure::lcc(), Measure::exact_bc()]
}

fn config() -> ServiceConfig {
    ServiceConfig {
        measures: measures(),
        cache_capacity: 16,
        prune_single_attribute_values: true,
        threads: 1,
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dn_replica_fault_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A base lake with disjoint value islands so the partitioner has real
/// components to spread across shards.
fn multi_component_base() -> MutableLake {
    let mut lake = MutableLake::new();
    lake.apply(
        &LakeDelta::new()
            .add_table(table("zoo", "animal", &["Jaguar", "Okapi", "Zebra"]))
            .add_table(table("cars", "make", &["Jaguar", "Fiat", "Kia"]))
            .add_table(table("fx", "code", &["USD", "EUR", "JPY"]))
            .add_table(table("prices", "currency", &["USD", "EUR", "GBP"]))
            .add_table(table("cities", "city", &["Memphis", "Sydney", "Austin"]))
            .add_table(table("routes", "dest", &["Sydney", "Phoenix", "Lima"])),
    )
    .expect("base lake applies");
    lake
}

fn table(name: &str, column: &str, cells: &[&str]) -> lake::Table {
    TableBuilder::new(name)
        .column(column, cells.iter().copied())
        .build()
        .expect("rectangular by construction")
}

/// Bit-exact agreement between two live engines: merged rankings compared
/// entry by entry on `to_bits`, per-shard identity counts compared exactly
/// (epoch and generation excluded — the generation counts internal
/// rebuilds, which legitimately differ across a snapshot bootstrap).
fn assert_bit_exact(label: &str, primary: &MultiView, follower: &MultiView) {
    assert_eq!(
        primary.shard_count(),
        follower.shard_count(),
        "{label}: shard counts"
    );
    for shard in 0..primary.shard_count() {
        let (p, f) = (primary.shard(shard).stats(), follower.shard(shard).stats());
        assert_eq!(
            p.value_nodes, f.value_nodes,
            "{label} shard {shard}: value nodes"
        );
        assert_eq!(
            p.attribute_nodes, f.attribute_nodes,
            "{label} shard {shard}: attribute nodes"
        );
        assert_eq!(p.edge_count, f.edge_count, "{label} shard {shard}: edges");
        assert_eq!(
            p.live_candidates, f.live_candidates,
            "{label} shard {shard}: candidates"
        );
        assert_eq!(
            p.component_count, f.component_count,
            "{label} shard {shard}: components"
        );
    }
    for measure in measures() {
        let merged_p = primary.top_k(measure, usize::MAX).expect("served measure");
        let merged_f = follower.top_k(measure, usize::MAX).expect("served measure");
        assert_eq!(
            merged_p.len(),
            merged_f.len(),
            "{label} {measure:?}: ranking lengths"
        );
        for (p, f) in merged_p.iter().zip(&merged_f) {
            assert_eq!(p.value, f.value, "{label} {measure:?}: ranked order");
            assert_eq!(
                p.score.to_bits(),
                f.score.to_bits(),
                "{label} {measure:?}: {} scored {} vs {}",
                p.value,
                p.score,
                f.score
            );
        }
    }
}

/// 1e-9 agreement between a follower's merged rankings and a from-scratch
/// single-engine build of the shadow lake.
fn assert_matches_fresh_build(view: &MultiView, expected: &MutableLake, context: &str) {
    let fresh = DomainNetBuilder::new().build(expected);
    for measure in measures() {
        let merged = view.top_k(measure, usize::MAX).expect("served measure");
        let rebuilt = fresh.rank_shared(measure);
        assert_eq!(
            merged.len(),
            rebuilt.len(),
            "{context} {measure:?}: candidate counts diverged"
        );
        let by_value: std::collections::HashMap<&str, f64> = rebuilt
            .iter()
            .map(|s| (s.value.as_str(), s.score))
            .collect();
        for s in &merged {
            let fresh_score = by_value
                .get(s.value.as_str())
                .unwrap_or_else(|| panic!("{context} {measure:?}: {} not in rebuild", s.value));
            assert!(
                (s.score - fresh_score).abs() < 1e-9,
                "{context} {measure:?}: {} scored {} replicated vs {} rebuilt",
                s.value,
                s.score,
                fresh_score
            );
        }
    }
}

fn mutate(
    primary: &Arc<Mutex<Coordinator>>,
    stream: &mut MutationStream,
    shadow: &mut MutableLake,
    count: usize,
) {
    for _ in 0..count {
        let delta = stream.next_delta(shadow);
        shadow.apply(&delta).expect("stream deltas apply");
        primary
            .lock()
            .unwrap()
            .apply_and_publish(delta)
            .expect("primary applies");
    }
}

#[test]
fn primary_killed_at_ten_seeded_points_follower_reconverges() {
    let base = multi_component_base();
    for kill_point in 0..KILL_POINTS {
        let seed = 9_000 + kill_point as u64;
        let context = format!("kill point {kill_point}");
        let root = test_dir(&format!("pkill_{kill_point}"));
        let primary_dir = root.join("primary");
        let follower_dir = root.join("follower");
        // Shards checkpoint on their own cadence, so most kill points land
        // with one shard snapshotted and another sitting on a WAL suffix.
        let policy = CheckpointPolicy::every_epochs(3);
        let mut stream = MutationStream::new(MutationConfig {
            seed,
            tables_per_delta: 2,
            rows_per_table: 8,
            ..MutationConfig::default()
        });
        let mut shadow = base.clone();

        // Phase 1: live primary; the follower bootstraps, catches up, then
        // falls behind again — the kill lands while it is mid-tail.
        let mut follower = {
            let (handle, coordinator) =
                serve_sharded_durable(base.clone(), config(), &primary_dir, policy, SHARDS)
                    .expect("fresh sharded primary");
            let primary = Arc::new(Mutex::new(coordinator));
            let source = LocalReplicaSource::new(handle, Arc::clone(&primary));
            mutate(&primary, &mut stream, &mut shadow, 1 + kill_point);
            let mut follower =
                Follower::bootstrap(&follower_dir, config(), CheckpointPolicy::manual(), &source)
                    .expect("follower bootstraps");
            let report = follower.sync_once(&source).expect("first sync");
            assert_eq!(report.lag_epochs, 0, "{context}: caught up pre-kill");
            // Traffic the follower has NOT replicated when the kill hits.
            mutate(&primary, &mut stream, &mut shadow, 2);
            follower
            // Primary coordinator and source drop here WITHOUT a final
            // checkpoint_now(): the simulated kill.
        };

        // Phase 2: restart over the same directory, take more writes, and
        // let the follower reconnect against the recovered primary.
        let (handle, coordinator) =
            serve_sharded_from_dir(&primary_dir, config(), policy).expect("primary recovers");
        let primary = Arc::new(Mutex::new(coordinator));
        let source = LocalReplicaSource::new(handle.clone(), Arc::clone(&primary));
        mutate(&primary, &mut stream, &mut shadow, 2);

        let report = follower.sync_once(&source).expect("post-restart sync");
        assert_eq!(report.lag_epochs, 0, "{context}: converged post-restart");
        assert_eq!(
            report.checked_shards, SHARDS,
            "{context}: insurance digests verified on every shard"
        );
        assert_eq!(
            follower.shared().divergence_total(),
            0,
            "{context}: a clean kill/restart is lag, never divergence"
        );
        assert_eq!(follower.shared().halted(), None, "{context}: still serving");

        let primary_view = handle.current();
        let follower_view = follower.handle().current();
        follower_view.verify_consistency().expect("follower view");
        assert_eq!(primary_view.epoch(), follower_view.epoch(), "{context}");
        assert_bit_exact(&context, &primary_view, &follower_view);
        assert_matches_fresh_build(&follower_view, &shadow, &context);

        // The pair keeps serving: one more write replicates cleanly.
        mutate(&primary, &mut stream, &mut shadow, 1);
        let report = follower.sync_once(&source).expect("follow-up sync");
        assert_eq!(report.lag_epochs, 0, "{context}: keeps tailing");
        assert_bit_exact(&context, &handle.current(), &follower.handle().current());

        std::fs::remove_dir_all(&root).expect("scratch cleanup");
    }
}

/// Forwards to an inner source but cuts the link after a budgeted number
/// of WAL fetches — the follower dies mid-pass with some shards applied
/// and others not, exactly like a crash between per-shard appends.
struct CuttingSource<'a> {
    inner: &'a LocalReplicaSource,
    wal_fetch_budget: Cell<usize>,
}

impl ReplicaSource for CuttingSource<'_> {
    fn fetch_status(&self) -> Result<dn_service::PrimaryStatus, ReplicaError> {
        self.inner.fetch_status()
    }

    fn fetch_snapshot(&self, shard: usize) -> Result<(u64, Vec<u8>), ReplicaError> {
        self.inner.fetch_snapshot(shard)
    }

    fn fetch_wal(&self, shard: usize, from_seq: u64) -> Result<WalFetch, ReplicaError> {
        let budget = self.wal_fetch_budget.get();
        if budget == 0 {
            return Err(ReplicaError::Source("injected link cut".into()));
        }
        self.wal_fetch_budget.set(budget - 1);
        self.inner.fetch_wal(shard, from_seq)
    }
}

#[test]
fn follower_killed_mid_apply_resumes_from_its_own_seq() {
    let root = test_dir("fkill");
    let primary_dir = root.join("primary");
    let follower_dir = root.join("follower");
    let base = multi_component_base();
    let (handle, coordinator) = serve_sharded_durable(
        base.clone(),
        config(),
        &primary_dir,
        CheckpointPolicy::manual(),
        SHARDS,
    )
    .expect("fresh sharded primary");
    let primary = Arc::new(Mutex::new(coordinator));
    let source = LocalReplicaSource::new(handle.clone(), Arc::clone(&primary));
    let mut stream = MutationStream::new(MutationConfig {
        seed: 7_700,
        tables_per_delta: 2,
        rows_per_table: 8,
        ..MutationConfig::default()
    });
    let mut shadow = base;

    mutate(&primary, &mut stream, &mut shadow, 4);
    let mut follower =
        Follower::bootstrap(&follower_dir, config(), CheckpointPolicy::manual(), &source)
            .expect("follower bootstraps");
    follower.sync_once(&source).expect("initial catch-up");

    // More traffic, then a sync whose link dies after ONE WAL fetch:
    // shard 0's suffix lands in the follower's WAL, shard 1's never
    // arrives, and the pass aborts before the view refresh.
    mutate(&primary, &mut stream, &mut shadow, 4);
    let cutting = CuttingSource {
        inner: &source,
        wal_fetch_budget: Cell::new(1),
    };
    let err = follower
        .sync_once(&cutting)
        .expect_err("the injected cut must surface");
    assert!(
        matches!(err, ReplicaError::Source(_)),
        "a stream cut is transient, got: {err}"
    );
    assert_eq!(
        follower.shared().halted(),
        None,
        "transient source failures must not latch the halt"
    );

    // Record where the (partially applied) WAL stands, then kill the
    // follower: drop without any checkpoint. Every applied record is
    // already synced to its shard log.
    let mid_apply_seqs: Vec<u64> = {
        let local = follower.coordinator();
        let local = local.lock().unwrap();
        (0..SHARDS).map(|s| local.shard_last_seq(s)).collect()
    };
    drop(follower);

    // The primary keeps moving while the follower is down.
    mutate(&primary, &mut stream, &mut shadow, 3);

    // Restart over the same directory: local recovery, no re-download,
    // resuming from exactly the sequence numbers the local WAL holds.
    let mut follower =
        Follower::bootstrap(&follower_dir, config(), CheckpointPolicy::manual(), &source)
            .expect("follower recovers locally");
    let resumed_seqs: Vec<u64> = {
        let local = follower.coordinator();
        let local = local.lock().unwrap();
        (0..SHARDS).map(|s| local.shard_last_seq(s)).collect()
    };
    assert_eq!(
        resumed_seqs, mid_apply_seqs,
        "local recovery must resume from the pre-kill per-shard positions"
    );

    // The next sync applies precisely the missed suffix — nothing is
    // re-fetched, nothing is skipped.
    let expected_suffix: u64 = {
        let p = primary.lock().unwrap();
        (0..SHARDS)
            .map(|s| p.shard_last_seq(s) - resumed_seqs[s])
            .sum()
    };
    assert!(
        expected_suffix > 0,
        "the primary moved while the follower was down"
    );
    let report = follower.sync_once(&source).expect("resumed sync");
    assert_eq!(
        report.applied_batches, expected_suffix,
        "the follower must apply exactly the batches it missed"
    );
    assert_eq!(report.lag_epochs, 0);
    assert_eq!(report.checked_shards, SHARDS);
    assert_eq!(follower.shared().divergence_total(), 0);

    let follower_view = follower.handle().current();
    follower_view.verify_consistency().expect("follower view");
    assert_bit_exact("follower restart", &handle.current(), &follower_view);
    assert_matches_fresh_build(&follower_view, &shadow, "follower restart");

    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}
