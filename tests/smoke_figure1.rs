//! Smoke test: the Figure-1 running example through the default pipeline.
//!
//! This is the fastest end-to-end signal that the repo works at all: build
//! the paper's running-example lake, run the default DomainNet pipeline, and
//! check the headline qualitative result of Example 3.6 — the homograph
//! JAGUAR ranks *first* under exact betweenness centrality and *last* (lowest
//! score) under the local clustering coefficient.

use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;

#[test]
fn figure1_jaguar_first_under_bc_and_last_under_lcc() {
    let lake = lake::fixtures::running_example();
    // Example 3.6 computes its scores on the full Figure-1 graph, so keep
    // single-attribute values (pruning them changes LCC neighborhoods).
    let net = DomainNetBuilder::new()
        .prune_single_attribute_values(false)
        .build(&lake);

    // Exact BC: higher = more homograph-like, so the ranking is descending
    // and JAGUAR leads it.
    let bc = net.rank(Measure::exact_bc());
    assert!(!bc.is_empty(), "pipeline produced no candidates");
    assert_eq!(
        bc[0].value, "JAGUAR",
        "JAGUAR must rank first under exact BC"
    );

    // LCC: lower = more homograph-like. Among the homograph candidates
    // (values occurring in at least two attributes — the paper's candidate
    // set), JAGUAR is last when sorted by raw LCC score: it holds the
    // strictly smallest coefficient.
    let lcc = net.rank(Measure::lcc());
    assert_eq!(
        lcc.len(),
        bc.len(),
        "both measures rank the same candidates"
    );
    let jaguar = lcc
        .iter()
        .find(|s| s.value == "JAGUAR")
        .expect("JAGUAR is a candidate");
    for other in lcc
        .iter()
        .filter(|s| s.value != "JAGUAR" && s.attribute_count >= 2)
    {
        assert!(
            jaguar.score < other.score,
            "JAGUAR ({}) must have the lowest LCC among repeats, but {} scores {}",
            jaguar.score,
            other.value,
            other.score
        );
    }
}
