//! Property-based integration tests over randomly generated lakes: whatever
//! the lake looks like, the pipeline's structural invariants must hold.

use proptest::prelude::*;

use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use lake::catalog::LakeCatalog;
use lake::table::TableBuilder;

/// Strategy producing a small random lake: a handful of tables, each with a
/// couple of columns drawing values from a shared pool (so repeats and
/// homograph-like bridges occur naturally).
fn arb_lake() -> impl Strategy<Value = LakeCatalog> {
    let table = (1usize..4, 2usize..12).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..40, rows),
            cols,
        )
    });
    proptest::collection::vec(table, 1..5).prop_map(|tables| {
        let mut catalog = LakeCatalog::new();
        for (t, columns) in tables.into_iter().enumerate() {
            let mut builder = TableBuilder::new(format!("t{t}"));
            for (c, cells) in columns.into_iter().enumerate() {
                builder = builder.column(
                    format!("c{c}"),
                    cells.into_iter().map(|v| format!("val_{v}")),
                );
            }
            catalog
                .add_table(builder.build().expect("rectangular by construction"))
                .expect("unique table names");
        }
        catalog
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ranking_covers_exactly_the_candidates(lake in arb_lake()) {
        let net = DomainNetBuilder::new().build(&lake);
        let candidates = lake.values_in_at_least(2).len();
        prop_assert_eq!(net.candidate_count(), candidates);

        for measure in [Measure::exact_bc(), Measure::lcc()] {
            let ranked = net.rank(measure);
            prop_assert_eq!(ranked.len(), candidates);
            // Every ranked value really does occur in >= 2 attributes.
            for s in &ranked {
                prop_assert!(s.attribute_count >= 2);
                let vid = lake.value_id(&s.value).expect("ranked value exists in the lake");
                prop_assert_eq!(lake.value_attribute_count(vid), s.attribute_count);
            }
        }
    }

    #[test]
    fn scores_are_finite_and_ordering_is_consistent(lake in arb_lake()) {
        let net = DomainNetBuilder::new().build(&lake);
        let ranked = net.rank(Measure::exact_bc());
        for w in ranked.windows(2) {
            prop_assert!(w[0].score + 1e-12 >= w[1].score, "BC ranking must be non-increasing");
        }
        for s in &ranked {
            prop_assert!(s.score.is_finite());
            prop_assert!(s.score >= -1e-9);
        }
        let lcc = net.rank(Measure::lcc());
        for w in lcc.windows(2) {
            prop_assert!(w[0].score <= w[1].score + 1e-12, "LCC ranking must be non-decreasing");
        }
        for s in &lcc {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s.score));
        }
    }

    #[test]
    fn unpruned_graph_matches_lake_shape(lake in arb_lake()) {
        let net = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(&lake);
        prop_assert_eq!(net.candidate_count(), lake.value_count());
        prop_assert_eq!(net.attribute_count(), lake.attribute_count());
        prop_assert_eq!(net.edge_count(), lake.incidence_count());
        prop_assert!(net.graph().validate().is_ok());
    }
}
