//! Property-style integration tests over randomly generated lakes: whatever
//! the lake looks like, the pipeline's structural invariants must hold.
//!
//! These originally used `proptest`; offline they run the same invariants
//! over a fixed number of seeded random lakes instead, so failures reproduce
//! exactly (the failing seed is in the assertion message).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;
use lake::catalog::LakeCatalog;
use lake::table::TableBuilder;

const CASES: u64 = 48;

/// Generate a small random lake: a handful of tables, each with a couple of
/// columns drawing values from a shared pool (so repeats and homograph-like
/// bridges occur naturally).
fn random_lake(seed: u64) -> LakeCatalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut catalog = LakeCatalog::new();
    let tables = rng.gen_range(1..5);
    for t in 0..tables {
        let cols = rng.gen_range(1usize..4);
        let rows = rng.gen_range(2usize..12);
        let mut builder = TableBuilder::new(format!("t{t}"));
        for c in 0..cols {
            let cells: Vec<String> = (0..rows)
                .map(|_| format!("val_{}", rng.gen_range(0u32..40)))
                .collect();
            builder = builder.column(format!("c{c}"), cells);
        }
        catalog
            .add_table(builder.build().expect("rectangular by construction"))
            .expect("unique table names");
    }
    catalog
}

#[test]
fn ranking_covers_exactly_the_candidates() {
    for seed in 0..CASES {
        let lake = random_lake(seed);
        let net = DomainNetBuilder::new().build(&lake);
        let candidates = lake.values_in_at_least(2).len();
        assert_eq!(net.candidate_count(), candidates, "seed {seed}");

        for measure in [Measure::exact_bc(), Measure::lcc()] {
            let ranked = net.rank(measure);
            assert_eq!(ranked.len(), candidates, "seed {seed}");
            // Every ranked value really does occur in >= 2 attributes.
            for s in &ranked {
                assert!(s.attribute_count >= 2, "seed {seed}");
                let vid = lake
                    .value_id(&s.value)
                    .expect("ranked value exists in the lake");
                assert_eq!(
                    lake.value_attribute_count(vid),
                    s.attribute_count,
                    "seed {seed}"
                );
            }
        }
    }
}

#[test]
fn scores_are_finite_and_ordering_is_consistent() {
    for seed in 0..CASES {
        let lake = random_lake(seed);
        let net = DomainNetBuilder::new().build(&lake);
        let ranked = net.rank(Measure::exact_bc());
        for w in ranked.windows(2) {
            assert!(
                w[0].score + 1e-12 >= w[1].score,
                "BC ranking must be non-increasing (seed {seed})"
            );
        }
        for s in &ranked {
            assert!(s.score.is_finite(), "seed {seed}");
            assert!(s.score >= -1e-9, "seed {seed}");
        }
        let lcc = net.rank(Measure::lcc());
        for w in lcc.windows(2) {
            assert!(
                w[0].score <= w[1].score + 1e-12,
                "LCC ranking must be non-decreasing (seed {seed})"
            );
        }
        for s in &lcc {
            assert!((0.0..=1.0 + 1e-9).contains(&s.score), "seed {seed}");
        }
    }
}

#[test]
fn unpruned_graph_matches_lake_shape() {
    for seed in 0..CASES {
        let lake = random_lake(seed);
        let net = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(&lake);
        assert_eq!(net.candidate_count(), lake.value_count(), "seed {seed}");
        assert_eq!(net.attribute_count(), lake.attribute_count(), "seed {seed}");
        assert_eq!(net.edge_count(), lake.incidence_count(), "seed {seed}");
        assert!(net.graph().validate().is_ok(), "seed {seed}");
    }
}
