//! End-to-end evaluation on the regenerated Synthetic Benchmark (SB),
//! reproducing the qualitative findings of Figures 5 and 6 and the §5.1
//! comparison.

use std::collections::BTreeSet;

use datagen::sb::SbGenerator;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::{precision_recall_at_k, Measure};

fn setup() -> (datagen::GeneratedLake, BTreeSet<String>) {
    let generated = SbGenerator::new(2021).generate();
    let truth = generated.homograph_set();
    (generated, truth)
}

#[test]
fn bc_beats_lcc_on_the_synthetic_benchmark() {
    let (generated, truth) = setup();
    let k = truth.len();
    let net = DomainNetBuilder::new().build(&generated.catalog);

    let bc_eval = precision_recall_at_k(&net.rank(Measure::exact_bc()), &truth, k);
    let lcc_eval = precision_recall_at_k(&net.rank(Measure::lcc()), &truth, k);

    // Figure 6 vs Figure 5: BC is the far better separator.
    assert!(
        bc_eval.precision > lcc_eval.precision,
        "BC precision {:.3} should beat LCC precision {:.3}",
        bc_eval.precision,
        lcc_eval.precision
    );
    // The paper reports 69% for BC at k = 55 and < 25% for LCC; allow slack
    // for the regenerated benchmark but require the same regime.
    assert!(
        bc_eval.precision >= 0.5,
        "BC precision@{k} unexpectedly low: {:.3}",
        bc_eval.precision
    );
    assert!(
        lcc_eval.precision <= 0.6,
        "LCC precision@{k} unexpectedly high: {:.3}",
        lcc_eval.precision
    );
}

#[test]
fn canonical_homographs_rank_high_under_bc() {
    let (generated, truth) = setup();
    let net = DomainNetBuilder::new().build(&generated.catalog);
    let ranked = net.rank(Measure::exact_bc());
    let top_half: BTreeSet<&str> = ranked
        .iter()
        .take(ranked.len() / 2)
        .map(|s| s.value.as_str())
        .collect();

    // The large-cardinality canonical homographs should sit in the upper half
    // of the ranking. (The country-code/state-abbreviation family is excluded
    // — the paper itself reports those as the misses.)
    for value in [
        "JAGUAR",
        "PUMA",
        "SYDNEY",
        "LINCOLN",
        "JAMAICA",
        "WASHINGTON",
    ] {
        assert!(truth.contains(value), "{value} must be ground truth");
        assert!(
            top_half.contains(value),
            "{value} should rank in the top half of the BC ranking"
        );
    }
}

#[test]
fn small_domain_homographs_are_the_hard_cases_for_bc() {
    // Figure 6's discussion: the state/country-code abbreviations live in the
    // two small tables and get near-zero BC. Verify they score below the
    // large-cardinality homographs.
    let (generated, _) = setup();
    let net = DomainNetBuilder::new().build(&generated.catalog);
    let ranked = net.rank(Measure::exact_bc());
    let score = |v: &str| {
        ranked
            .iter()
            .find(|s| s.value == v)
            .map(|s| s.score)
            .unwrap_or(0.0)
    };
    let jaguar = score("JAGUAR");
    for abbrev in ["CA", "GA", "MD", "AL"] {
        assert!(
            score(abbrev) < jaguar,
            "{abbrev} (small-domain homograph) should score below JAGUAR"
        );
    }
}

#[test]
fn d4_baseline_trails_domainnet_on_sb() {
    let (generated, truth) = setup();
    let k = truth.len();
    let net = DomainNetBuilder::new().build(&generated.catalog);
    let dn = precision_recall_at_k(&net.rank(Measure::exact_bc()), &truth, k);

    let d4_out = d4::discover(&generated.catalog, d4::D4Config::default());
    let found = d4_out.homographs();
    let hits = found.intersection(&truth).count();
    let d4_recall = hits as f64 / truth.len() as f64;
    let d4_precision = if found.is_empty() {
        0.0
    } else {
        hits as f64 / found.len() as f64
    };
    let d4_f1 = if d4_precision + d4_recall == 0.0 {
        0.0
    } else {
        2.0 * d4_precision * d4_recall / (d4_precision + d4_recall)
    };

    assert!(
        dn.f1 > d4_f1,
        "DomainNet F1 {:.3} should beat the D4 baseline F1 {:.3}",
        dn.f1,
        d4_f1
    );
}

#[test]
fn lcc_top_list_is_dominated_by_small_domain_unambiguous_values() {
    // Figure 5's qualitative finding: the lowest-LCC values are mostly *not*
    // homographs.
    let (generated, truth) = setup();
    let net = DomainNetBuilder::new().build(&generated.catalog);
    let ranked = net.rank(Measure::lcc());
    let k = truth.len();
    let hits = ranked[..k]
        .iter()
        .filter(|s| truth.contains(&s.value))
        .count();
    assert!(
        (hits as f64) < 0.6 * k as f64,
        "LCC top-{k} contains {hits} homographs — too many for the Figure 5 regime"
    );
}
