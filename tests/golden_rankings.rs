//! Golden regression corpus for the homograph rankings.
//!
//! The committed files under `tests/golden/` pin the expected top-20
//! ranking (per measure) for the seeded workloads. Future performance PRs
//! — kernel rewrites, sampling changes, cache layers — must reproduce these
//! rankings bit-for-bit in order and to 1e-9 in score, so silent drift in
//! the scoring pipeline fails CI instead of shipping.
//!
//! To regenerate after an *intentional* ranking change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_rankings
//! ```
//!
//! then review the diff of `tests/golden/` like any other code change.

use datagen::sb::{SbConfig, SbGenerator};
use dn_graph::approx_bc::{ApproxBcConfig, SamplingStrategy};
use dn_graph::lcc::LccMethod;
use domainnet::{DomainNetBuilder, Measure, ScoredValue};
use lake::delta::LakeView;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

const TOP_K: usize = 20;
const SCORE_TOLERANCE: f64 = 1e-9;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenEntry {
    rank: usize,
    value: String,
    score: f64,
    attribute_count: usize,
    cardinality: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenRanking {
    workload: String,
    measure: String,
    k: usize,
    entries: Vec<GoldenEntry>,
}

struct GoldenCase {
    file: &'static str,
    workload: &'static str,
    measure: Measure,
    measure_label: &'static str,
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The seeded SB approx-BC measure: enough samples for a stable head of the
/// ranking, fully determined by the vendored RNG.
fn sb_approx_bc() -> Measure {
    Measure::ApproxBc(ApproxBcConfig {
        samples: 512,
        strategy: SamplingStrategy::Uniform,
        seed: 2021,
    })
}

fn cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            file: "running_example_lcc.json",
            workload: "running-example",
            measure: Measure::lcc(),
            measure_label: "LCC",
        },
        GoldenCase {
            file: "running_example_lcc_attr.json",
            workload: "running-example",
            measure: Measure::Lcc(LccMethod::AttributeJaccard),
            measure_label: "LCC(attr)",
        },
        GoldenCase {
            file: "running_example_bc.json",
            workload: "running-example",
            measure: Measure::exact_bc(),
            measure_label: "BC",
        },
        GoldenCase {
            file: "sb_lcc.json",
            workload: "sb-seed2021-rows120",
            measure: Measure::lcc(),
            measure_label: "LCC",
        },
        GoldenCase {
            file: "sb_bc_approx.json",
            workload: "sb-seed2021-rows120",
            measure: sb_approx_bc(),
            measure_label: "BC(approx,512,seed2021)",
        },
    ]
}

/// Build the ranking a case describes, from scratch.
fn build_ranking(case: &GoldenCase) -> Vec<ScoredValue> {
    match case.workload {
        "running-example" => {
            let lake = lake::fixtures::running_example();
            // Unpruned so every Figure-1 value is a candidate.
            DomainNetBuilder::new()
                .prune_single_attribute_values(false)
                .build(&lake)
                .top_k(case.measure, TOP_K)
        }
        "sb-seed2021-rows120" => {
            let sb = SbGenerator::with_config(SbConfig {
                seed: 2021,
                rows_per_table: 120,
            })
            .generate();
            let lake = lake::delta::MutableLake::from_catalog(&sb.catalog);
            assert!(
                LakeView::value_count(&lake) > 100,
                "the seeded SB lake should be non-trivial"
            );
            DomainNetBuilder::new()
                .build(&lake)
                .top_k(case.measure, TOP_K)
        }
        other => panic!("unknown golden workload '{other}'"),
    }
}

fn to_golden(case: &GoldenCase, ranking: &[ScoredValue]) -> GoldenRanking {
    GoldenRanking {
        workload: case.workload.to_owned(),
        measure: case.measure_label.to_owned(),
        k: TOP_K,
        entries: ranking
            .iter()
            .enumerate()
            .map(|(i, s)| GoldenEntry {
                rank: i + 1,
                value: s.value.clone(),
                score: s.score,
                attribute_count: s.attribute_count,
                cardinality: s.cardinality,
            })
            .collect(),
    }
}

fn diff_message(case: &GoldenCase, expected: &GoldenRanking, actual: &GoldenRanking) -> String {
    let mut lines = vec![format!(
        "golden ranking drifted: {} / {} ({})",
        case.workload, case.measure_label, case.file
    )];
    let n = expected.entries.len().max(actual.entries.len());
    for i in 0..n {
        match (expected.entries.get(i), actual.entries.get(i)) {
            (Some(e), Some(a))
                if e.value == a.value
                    && (e.score - a.score).abs() <= SCORE_TOLERANCE
                    && e.attribute_count == a.attribute_count
                    && e.cardinality == a.cardinality => {}
            (e, a) => {
                let fmt = |x: Option<&GoldenEntry>| match x {
                    Some(g) => format!(
                        "{} (score {:.12}, attrs {}, card {})",
                        g.value, g.score, g.attribute_count, g.cardinality
                    ),
                    None => "<missing>".to_owned(),
                };
                lines.push(format!(
                    "  rank {:>2}: expected {} | got {}",
                    i + 1,
                    fmt(e),
                    fmt(a)
                ));
            }
        }
    }
    lines.push(String::new());
    lines.push(
        "If this change is intentional, regenerate the corpus with\n    \
         UPDATE_GOLDEN=1 cargo test --test golden_rankings\nand commit the \
         updated files under tests/golden/ after reviewing the diff."
            .to_owned(),
    );
    lines.join("\n")
}

#[test]
fn golden_rankings_match_the_committed_corpus() {
    let dir = golden_dir();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }

    let mut failures = Vec::new();
    for case in cases() {
        let actual = to_golden(&case, &build_ranking(&case));
        let path = dir.join(case.file);
        if update {
            let json = serde_json::to_string_pretty(&actual).expect("serialize golden");
            std::fs::write(&path, json + "\n").expect("write golden file");
            println!("regenerated {}", path.display());
            continue;
        }
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {}: {e}\nGenerate the corpus with\n    \
                 UPDATE_GOLDEN=1 cargo test --test golden_rankings",
                path.display()
            )
        });
        let expected: GoldenRanking = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("parse {}: {e:?}", path.display()));
        let order_matches = expected.entries.len() == actual.entries.len()
            && expected.entries.iter().zip(&actual.entries).all(|(e, a)| {
                e.value == a.value
                    && (e.score - a.score).abs() <= SCORE_TOLERANCE
                    && e.attribute_count == a.attribute_count
                    && e.cardinality == a.cardinality
            });
        if !order_matches {
            failures.push(diff_message(&case, &expected, &actual));
        }
    }

    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

/// A single-shard coordinator must serve the golden workloads
/// *bit-identically* to a direct from-scratch build: same candidate order,
/// same score bits. This is the acceptance gate for `--shards 1` being a
/// pure pass-through — no re-partitioning, no re-ranking, no float drift.
#[test]
fn single_shard_coordinator_serves_the_corpus_bit_identically() {
    use dn_service::{serve_sharded, ServiceConfig};

    let workloads: [(&str, lake::delta::MutableLake, Vec<Measure>, bool); 2] = [
        (
            "running-example",
            lake::delta::MutableLake::from_catalog(&lake::fixtures::running_example()),
            vec![
                Measure::lcc(),
                Measure::Lcc(LccMethod::AttributeJaccard),
                Measure::exact_bc(),
            ],
            false,
        ),
        (
            "sb-seed2021-rows120",
            {
                let sb = SbGenerator::with_config(SbConfig {
                    seed: 2021,
                    rows_per_table: 120,
                })
                .generate();
                lake::delta::MutableLake::from_catalog(&sb.catalog)
            },
            vec![Measure::lcc(), sb_approx_bc()],
            true,
        ),
    ];

    for (workload, lake, measures, prune) in workloads {
        let (handle, _coordinator) = serve_sharded(
            lake,
            ServiceConfig {
                measures: measures.clone(),
                cache_capacity: 8,
                prune_single_attribute_values: prune,
                threads: 1,
            },
            1,
        );
        let view = handle.current();
        for case in cases().iter().filter(|c| c.workload == workload) {
            let direct = build_ranking(case);
            let served = view
                .top_k(case.measure, TOP_K)
                .expect("coordinator serves every golden measure");
            assert_eq!(
                served.len(),
                direct.len(),
                "{workload} / {}: candidate counts diverged",
                case.measure_label
            );
            for (s, d) in served.iter().zip(&direct) {
                assert_eq!(
                    s.value, d.value,
                    "{workload} / {}: order drifted",
                    case.measure_label
                );
                assert_eq!(
                    s.score.to_bits(),
                    d.score.to_bits(),
                    "{workload} / {}: score bits drifted for {}",
                    case.measure_label,
                    s.value
                );
                assert_eq!(s.attribute_count, d.attribute_count, "{}", s.value);
                assert_eq!(s.cardinality, d.cardinality, "{}", s.value);
            }
        }
    }
}

/// The corpus itself must stay sane: every committed file parses, has the
/// advertised shape, and its scores are finite.
#[test]
fn golden_corpus_files_are_well_formed() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // the other test is rewriting the corpus right now
    }
    for case in cases() {
        let path = golden_dir().join(case.file);
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        let golden: GoldenRanking = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("parse {}: {e:?}", path.display()));
        assert_eq!(golden.workload, case.workload, "{}", case.file);
        assert_eq!(golden.measure, case.measure_label, "{}", case.file);
        assert!(!golden.entries.is_empty(), "{} is empty", case.file);
        assert!(golden.entries.len() <= golden.k, "{}", case.file);
        for (i, entry) in golden.entries.iter().enumerate() {
            assert_eq!(entry.rank, i + 1, "{}: rank column drifted", case.file);
            assert!(entry.score.is_finite(), "{}: NaN/inf score", case.file);
            assert!(!entry.value.is_empty(), "{}", case.file);
        }
    }
}
