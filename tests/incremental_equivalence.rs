//! Property test: incremental maintenance is equivalent to rebuilding.
//!
//! For 100+ seeded random mutation sequences (table adds, removes, re-adds,
//! and cell rewrites), applying every delta incrementally — `MutableLake::
//! apply` + `DomainNet::apply_delta` — must leave the model equivalent to a
//! from-scratch build of the final lake state:
//!
//! * identical live node sets (value labels and attribute labels),
//! * identical live edge sets (value label, attribute label),
//! * LCC and exact-BC scores equal per value within 1e-9.
//!
//! The from-scratch reference is built from `MutableLake::snapshot()`, which
//! re-derives a dense `LakeCatalog` with a completely independent id space,
//! so the comparison exercises the full stable-id machinery.

use std::collections::{BTreeMap, BTreeSet};

use domainnet_suite::prelude::*;
use lake::delta::{LakeDelta, MutableLake};
use lake::table::TableBuilder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const POOLS: &[(&str, &[&str])] = &[
    (
        "animal",
        &[
            "Jaguar", "Puma", "Panda", "Lemur", "Pelican", "Okapi", "Colt", "Falcon", "Eagle",
        ],
    ),
    (
        "brand",
        &[
            "Jaguar", "Puma", "Fiat", "Toyota", "Apple", "Colt", "Falcon", "Rover",
        ],
    ),
    (
        "city",
        &[
            "Memphis", "Sydney", "Austin", "Phoenix", "Jamaica", "Victoria", "Atlanta",
        ],
    ),
    (
        "name",
        &[
            "Sydney",
            "Victoria",
            "Charlotte",
            "Austin",
            "Phoenix",
            "Savannah",
            "Olive",
        ],
    ),
];

fn random_table(rng: &mut StdRng, name: &str) -> lake::Table {
    let n_cols = rng.gen_range(1..=3usize);
    let rows = rng.gen_range(2..=8usize);
    let mut pools: Vec<&(&str, &[&str])> = POOLS.iter().collect();
    pools.shuffle(rng);
    let mut builder = TableBuilder::new(name);
    for (col, pool) in pools.into_iter().take(n_cols) {
        let cells: Vec<String> = (0..rows)
            .map(|_| (*pool.choose(rng).expect("pool non-empty")).to_owned())
            .collect();
        builder = builder.column(*col, cells);
    }
    builder.build().expect("rectangular by construction")
}

/// Live (value label, attribute label) edge set of a maintained net.
fn live_edges(net: &DomainNet) -> BTreeSet<(String, String)> {
    let graph = net.graph();
    let mut edges = BTreeSet::new();
    for v in graph.value_nodes() {
        for &a in graph.neighbors(v) {
            edges.insert((
                graph.value_label(v).to_owned(),
                graph.node_label(a).to_owned(),
            ));
        }
    }
    edges
}

fn live_values(net: &DomainNet) -> BTreeSet<String> {
    let graph = net.graph();
    graph
        .value_nodes()
        .filter(|&v| graph.degree(v) > 0)
        .map(|v| graph.value_label(v).to_owned())
        .collect()
}

fn score_map(net: &DomainNet, measure: Measure) -> BTreeMap<String, f64> {
    net.rank(measure)
        .into_iter()
        .map(|s| (s.value, s.score))
        .collect()
}

fn assert_equivalent(seq: u64, step: usize, incremental: &DomainNet, fresh: &DomainNet) {
    assert_eq!(
        live_values(incremental),
        live_values(fresh),
        "seq {seq} step {step}: live value sets diverged"
    );
    assert_eq!(
        live_edges(incremental),
        live_edges(fresh),
        "seq {seq} step {step}: live edge sets diverged"
    );
    for measure in [Measure::lcc(), Measure::exact_bc()] {
        let a = score_map(incremental, measure);
        let b = score_map(fresh, measure);
        assert_eq!(
            a.len(),
            b.len(),
            "seq {seq} step {step}: ranking sizes under {}",
            measure.name()
        );
        for (value, score) in &a {
            let reference = b
                .get(value)
                .unwrap_or_else(|| panic!("seq {seq} step {step}: {value} missing from fresh"));
            assert!(
                (score - reference).abs() < 1e-9,
                "seq {seq} step {step}: {value} scored {score} vs {reference} under {}",
                measure.name()
            );
        }
    }
}

#[test]
fn random_mutation_sequences_match_from_scratch_builds() {
    let sequences = 110u64;
    for seq in 0..sequences {
        let mut rng = StdRng::seed_from_u64(0xD0_17A + seq);

        // Random base lake of 2-4 tables.
        let mut lake = MutableLake::new();
        let mut next_id = 0usize;
        let base_delta = (0..rng.gen_range(2..=4usize)).fold(LakeDelta::new(), |delta, _| {
            let table = random_table(&mut rng, &format!("base_{next_id}"));
            next_id += 1;
            delta.add_table(table)
        });
        lake.apply(&base_delta).expect("base lake applies");

        let builder = DomainNetBuilder::new().prune_single_attribute_values(seq % 2 == 0);
        let mut net = builder.build(&lake);
        // Warm both caches so each delta exercises the patch path.
        let _ = net.rank(Measure::lcc());
        let _ = net.rank(Measure::exact_bc());

        let mut removed: Vec<lake::Table> = Vec::new();
        let steps = rng.gen_range(3..=8usize);
        for _step in 0..steps {
            // Pick a random applicable op.
            let live: Vec<String> = lake
                .live_table_names()
                .into_iter()
                .map(str::to_owned)
                .collect();
            let delta = match rng.gen_range(0..4u32) {
                // Add a fresh table, or re-add a removed one (value revival).
                0 | 1 => {
                    if let (true, Some(pos)) = (
                        rng.gen_bool(0.3) && !removed.is_empty(),
                        (!removed.is_empty()).then(|| rng.gen_range(0..removed.len())),
                    ) {
                        LakeDelta::new().add_table(removed.swap_remove(pos))
                    } else {
                        let table = random_table(&mut rng, &format!("t_{next_id}"));
                        next_id += 1;
                        LakeDelta::new().add_table(table)
                    }
                }
                2 => {
                    // Keep at least one live table so the lake never empties.
                    if lake.live_table_count() == 1 {
                        continue;
                    }
                    let name = live[rng.gen_range(0..live.len())].clone();
                    removed.push(lake.table(&name).expect("live table").clone());
                    LakeDelta::new().remove_table(name)
                }
                _ => {
                    let name = live[rng.gen_range(0..live.len())].clone();
                    let table = lake.table(&name).expect("live table");
                    let col = &table.columns()[rng.gen_range(0..table.column_count())];
                    let col_name = col.name().to_owned();
                    let distinct: Vec<String> = col.distinct_values().map(str::to_owned).collect();
                    if distinct.is_empty() {
                        continue;
                    }
                    let target = distinct[rng.gen_range(0..distinct.len())].clone();
                    let replacement = format!("Swap{}", rng.gen_range(0..30u32));
                    LakeDelta::new().replace_value(name, col_name, &target, replacement)
                }
            };
            let effects = lake.apply(&delta).expect("generated ops apply");
            net.apply_delta(&lake, &effects)
                .expect("effects match the maintained net");
            net.graph().validate().expect("patched CSR is consistent");
        }

        // From-scratch reference over a fully independent id space.
        let snapshot = lake.snapshot().expect("live tables are well-formed");
        let fresh = builder.build(&snapshot);
        assert_equivalent(seq, steps, &net, &fresh);

        // The incremental component structure matches a fresh computation.
        let fresh_components = dn_graph::components::connected_components(net.graph());
        assert_eq!(
            net.components().count(),
            fresh_components.count(),
            "seq {seq}: component counts diverged"
        );
    }
}

#[test]
fn incremental_maintenance_is_deterministic() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(99);
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(random_table(&mut rng, "base")))
            .expect("applies");
        let mut net = DomainNetBuilder::new().build(&lake);
        let _ = net.rank(Measure::lcc());
        for i in 0..5 {
            let table = random_table(&mut rng, &format!("t{i}"));
            let effects = lake
                .apply(&LakeDelta::new().add_table(table))
                .expect("applies");
            net.apply_delta(&lake, &effects).expect("patch applies");
        }
        net.rank(Measure::lcc())
    };
    assert_eq!(run(), run());
}
