//! Divergence insurance for WAL-shipping replication: every injected
//! corruption must be *detected* — a diverged follower never serves a
//! ranking.
//!
//! Two suites:
//!
//! * `in_flight_corruption_is_caught_within_one_exchange` — a byte of one
//!   replicated batch is flipped after the CRC was stripped (the window
//!   the WAL checksum cannot cover): the follower applies it silently,
//!   and the insurance digest must flag the mismatch in the *same* sync
//!   pass, increment `dn_replica_divergence_total`, latch the halt, and
//!   turn every follower read into a typed `503 replica_diverged` over
//!   HTTP — while `/healthz` and `/metrics` stay reachable for operators.
//! * `on_disk_corruption_is_caught_on_the_first_exchange_after_restart` —
//!   one record in a stopped follower's shard WAL is rewritten with a
//!   recomputed CRC (checksum-valid, content-wrong — e.g. silent media
//!   corruption): local recovery replays the lie without complaint, and
//!   the first digest exchange after restart must catch it.
//!
//! Temp directories live under `CARGO_TARGET_TMPDIR` (the CI hygiene gate
//! fails if anything is left behind).

use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use dn_server::{serve_http_follower, Client, ReplicaContext, ServerConfig};
use dn_service::{
    serve_sharded_durable, CheckpointPolicy, Follower, LocalReplicaSource, ReplicaError,
    ReplicaSource, ServiceConfig, WalFetch,
};
use domainnet::Measure;
use lake::delta::{LakeDelta, MutableLake};
use lake::table::TableBuilder;

const SHARDS: usize = 2;

fn config() -> ServiceConfig {
    ServiceConfig {
        measures: vec![Measure::lcc(), Measure::exact_bc()],
        cache_capacity: 16,
        prune_single_attribute_values: true,
        threads: 1,
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dn_replica_div_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn multi_component_base() -> MutableLake {
    let mut lake = MutableLake::new();
    lake.apply(
        &LakeDelta::new()
            .add_table(table("zoo", "animal", &["Jaguar", "Okapi", "Zebra"]))
            .add_table(table("cars", "make", &["Jaguar", "Fiat", "Kia"]))
            .add_table(table("fx", "code", &["USD", "EUR", "JPY"]))
            .add_table(table("cities", "city", &["Memphis", "Sydney", "Austin"])),
    )
    .expect("base lake applies");
    lake
}

fn table(name: &str, column: &str, cells: &[&str]) -> lake::Table {
    TableBuilder::new(name)
        .column(column, cells.iter().copied())
        .build()
        .expect("rectangular by construction")
}

/// Stand up a durable primary + caught-up follower pair under `root`.
fn primary_and_follower(
    root: &Path,
) -> (
    dn_service::CoordinatorHandle,
    Arc<Mutex<dn_service::Coordinator>>,
    LocalReplicaSource,
    Follower,
) {
    let (handle, coordinator) = serve_sharded_durable(
        multi_component_base(),
        config(),
        root.join("primary"),
        CheckpointPolicy::manual(),
        SHARDS,
    )
    .expect("fresh sharded primary");
    let primary = Arc::new(Mutex::new(coordinator));
    let source = LocalReplicaSource::new(handle.clone(), Arc::clone(&primary));
    let mut follower = Follower::bootstrap(
        root.join("follower"),
        config(),
        CheckpointPolicy::manual(),
        &source,
    )
    .expect("follower bootstraps");
    let report = follower.sync_once(&source).expect("clean initial sync");
    assert_eq!(report.lag_epochs, 0);
    (handle, primary, source, follower)
}

/// Forwards to the inner source, but flips a byte in the first replicated
/// batch whose payload mentions the marker — *after* the transport layer
/// would have stripped and verified the CRC, which is exactly the window
/// the WAL checksum cannot cover.
struct CorruptingSource<'a> {
    inner: &'a LocalReplicaSource,
    corrupted: Cell<bool>,
}

impl ReplicaSource for CorruptingSource<'_> {
    fn fetch_status(&self) -> Result<dn_service::PrimaryStatus, ReplicaError> {
        self.inner.fetch_status()
    }

    fn fetch_snapshot(&self, shard: usize) -> Result<(u64, Vec<u8>), ReplicaError> {
        self.inner.fetch_snapshot(shard)
    }

    fn fetch_wal(&self, shard: usize, from_seq: u64) -> Result<WalFetch, ReplicaError> {
        match self.inner.fetch_wal(shard, from_seq)? {
            WalFetch::Records(mut records) => {
                if !self.corrupted.get() {
                    for record in &mut records {
                        let text = serde_json::to_string(&record.batch).expect("batch serializes");
                        if text.contains("Jaguar") {
                            // Both the raw dictionary entry and its cached
                            // normalized form: the lie has to be
                            // *self-consistent* to model the dangerous case
                            // — corruption that yields a valid batch with
                            // wrong content, which no apply-time validation
                            // can reject.
                            let tampered =
                                text.replace("Jaguar", "Jaguaq").replace("JAGUAR", "JAGUAQ");
                            record.batch = serde_json::from_str(&tampered)
                                .expect("tampered batch still decodes");
                            self.corrupted.set(true);
                            break;
                        }
                    }
                }
                Ok(WalFetch::Records(records))
            }
            other => Ok(other),
        }
    }
}

#[test]
fn in_flight_corruption_is_caught_within_one_exchange() {
    let root = test_dir("inflight");
    let (_handle, primary, source, mut follower) = primary_and_follower(&root);

    primary
        .lock()
        .unwrap()
        .apply_and_publish(LakeDelta::new().add_table(table(
            "marked",
            "animal",
            &["Jaguar", "Puma"],
        )))
        .expect("primary applies");

    let corrupting = CorruptingSource {
        inner: &source,
        corrupted: Cell::new(false),
    };
    let err = follower
        .sync_once(&corrupting)
        .expect_err("the tampered batch must not pass the digest exchange");
    assert!(corrupting.corrupted.get(), "the fault actually injected");
    let reason = match err {
        ReplicaError::Diverged(reason) => reason,
        other => panic!("expected Diverged, got: {other}"),
    };
    assert!(
        reason.contains("digest mismatch"),
        "the reason names the failed exchange: {reason}"
    );
    assert_eq!(follower.shared().divergence_total(), 1);
    assert_eq!(
        follower.shared().halted().as_deref(),
        Some(reason.as_str()),
        "the first divergence latches the halt"
    );

    // Even against a now-clean source the follower refuses to resume —
    // its local state is wrong and only an operator can rebuild it.
    let refused = follower
        .sync_once(&source)
        .expect_err("a halted follower must not sync again");
    assert!(matches!(refused, ReplicaError::Diverged(_)));
    assert_eq!(
        follower.shared().divergence_total(),
        1,
        "refusing to resume is not a second divergence"
    );

    // Over HTTP the halt is a *typed* refusal on every data route, while
    // health, metrics, and the write-redirect envelope keep working.
    let server = serve_http_follower(
        follower.handle(),
        follower.coordinator(),
        ServerConfig::default(),
        ReplicaContext {
            primary_url: "http://127.0.0.1:9".into(),
            shared: follower.shared(),
        },
    )
    .expect("follower server binds");
    let mut client = Client::new(server.local_addr());

    let read = client.get("/v1/top-k?measure=bc&k=3").expect("wire ok");
    assert_eq!(
        read.status, 503,
        "a diverged follower never serves a ranking"
    );
    assert!(
        read.body.contains("replica_diverged"),
        "typed error kind, got: {}",
        read.body
    );
    let stats = client.get("/v1/tables").expect("wire ok");
    assert_eq!(
        stats.status, 503,
        "every data route is gated, not just top-k"
    );

    let write = client.post_json("/v1/mutations", "{}").expect("wire ok");
    assert_eq!(
        write.status, 403,
        "writes redirect regardless of halt state"
    );
    assert!(write.body.contains("read_only_follower"));

    let health = client.get("/healthz").expect("wire ok");
    assert_eq!(health.status, 200, "operators can still observe the halt");
    let metrics = client.get("/metrics").expect("wire ok");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("dn_replica_divergence_total 1"),
        "the counter is exported: {}",
        metrics
            .body
            .lines()
            .filter(|l| l.contains("replica"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    server.shutdown();
    server.join_follower();
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}

// The WAL file layout, from `crates/store/src/wal.rs`:
// `DNWAL001` + version u32, then per record
// seq u64 | epoch u64 | payload_len u32 | crc32(seq ‖ epoch ‖ payload) u32 | payload.
const WAL_FILE_HEADER_LEN: usize = 8 + 4;
const WAL_RECORD_HEADER_LEN: usize = 8 + 8 + 4 + 4;

/// Rewrite the first on-disk WAL record (across all of `shards`) whose
/// payload matches the first substitution, applying every `(needle,
/// replacement)` pair in place and recomputing the record CRC — a
/// checksum-valid, self-consistent lie, like silent media corruption that
/// happens to land on content bytes. The substitutions must cover every
/// serialized form of the value (raw dictionary entry *and* its cached
/// normalized distinct), or apply-time validation rejects the record
/// instead of replaying it.
fn corrupt_one_record_on_disk(root: &Path, shards: usize, subs: &[(&[u8], &[u8])]) -> bool {
    for (needle, replacement) in subs {
        assert_eq!(needle.len(), replacement.len(), "in-place substitution");
    }
    for shard in 0..shards {
        let path = dn_store::shard_dir(root, shard).join("wal.dnlog");
        let mut bytes = std::fs::read(&path).expect("follower shard WAL");
        let mut pos = WAL_FILE_HEADER_LEN;
        while pos + WAL_RECORD_HEADER_LEN <= bytes.len() {
            let seq = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            let epoch = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().unwrap()) as usize;
            let start = pos + WAL_RECORD_HEADER_LEN;
            if start + len > bytes.len() {
                break;
            }
            let payload = &mut bytes[start..start + len];
            let marker = subs[0].0;
            if payload.windows(marker.len()).any(|w| w == marker) {
                for (needle, replacement) in subs {
                    let mut offset = 0;
                    while offset + needle.len() <= payload.len() {
                        if &payload[offset..offset + needle.len()] == *needle {
                            payload[offset..offset + needle.len()].copy_from_slice(replacement);
                            offset += needle.len();
                        } else {
                            offset += 1;
                        }
                    }
                }
                let mut checked = Vec::with_capacity(16 + len);
                checked.extend_from_slice(&seq.to_le_bytes());
                checked.extend_from_slice(&epoch.to_le_bytes());
                checked.extend_from_slice(&bytes[start..start + len]);
                let crc = dn_store::codec::crc32(&checked);
                bytes[pos + 20..pos + 24].copy_from_slice(&crc.to_le_bytes());
                std::fs::write(&path, &bytes).expect("rewrite follower WAL");
                return true;
            }
            pos = start + len;
        }
    }
    false
}

#[test]
fn on_disk_corruption_is_caught_on_the_first_exchange_after_restart() {
    let root = test_dir("ondisk");
    let (_handle, primary, source, mut follower) = primary_and_follower(&root);

    // Replicate a marked record so the follower's local WAL holds it,
    // then stop the follower cleanly short of a checkpoint — the record
    // stays in the log, where recovery will trust it.
    primary
        .lock()
        .unwrap()
        .apply_and_publish(LakeDelta::new().add_table(table(
            "marked",
            "animal",
            &["Jaguar", "Puma"],
        )))
        .expect("primary applies");
    follower
        .sync_once(&source)
        .expect("follower replicates the record");
    assert_eq!(follower.shared().divergence_total(), 0);
    let follower_dir = follower.root().to_path_buf();
    drop(follower);

    assert!(
        corrupt_one_record_on_disk(
            &follower_dir,
            SHARDS,
            &[(b"Jaguar", b"Jaguaq"), (b"JAGUAR", b"JAGUAQ")],
        ),
        "the marked record must exist in some shard's WAL"
    );

    // Local recovery replays the checksum-valid lie without complaint...
    let mut follower =
        Follower::bootstrap(&follower_dir, config(), CheckpointPolicy::manual(), &source)
            .expect("recovery cannot see through a valid CRC");

    // ...and the very first insurance exchange catches it.
    let err = follower
        .sync_once(&source)
        .expect_err("the first digest exchange must flag the corrupted shard");
    assert!(
        matches!(&err, ReplicaError::Diverged(reason) if reason.contains("digest mismatch")),
        "expected a digest-mismatch divergence, got: {err}"
    );
    assert_eq!(follower.shared().divergence_total(), 1);
    assert!(follower.shared().halted().is_some());

    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}
