//! Integration test of the TUS-I methodology: remove natural homographs,
//! inject synthetic ones, and check that DomainNet recovers them (Tables 2
//! and 3 in miniature).

use std::collections::BTreeSet;

use datagen::inject::{inject_homographs, remove_homographs, InjectionConfig};
use datagen::tus::{TusConfig, TusGenerator};
use domainnet::eval::recall_of_expected_in_top_k;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;

fn clean_lake(seed: u64) -> datagen::GeneratedLake {
    let generated = TusGenerator::new(TusConfig::small(seed)).generate();
    remove_homographs(&generated)
}

fn recovery(clean: &datagen::GeneratedLake, config: InjectionConfig, top_k: usize) -> f64 {
    let injected = inject_homographs(clean, config).expect("injection succeeds");
    let net = DomainNetBuilder::new().build(&injected.lake.catalog);
    // Exact BC: the small test lake makes it affordable and removes sampling
    // noise from the assertion.
    let ranked = net.rank(Measure::exact_bc());
    let expected: BTreeSet<String> = injected.injected.iter().cloned().collect();
    recall_of_expected_in_top_k(&ranked, &expected, top_k)
}

#[test]
fn injected_homographs_are_recovered_in_the_top_of_the_ranking() {
    let clean = clean_lake(100);
    let config = InjectionConfig {
        count: 15,
        meanings: 2,
        min_attr_cardinality: 40,
        seed: 4,
    };
    let recall = recovery(&clean, config, 15);
    assert!(
        recall >= 0.6,
        "expected most injected homographs in the top-15, got {recall:.2}"
    );
}

#[test]
fn more_meanings_do_not_hurt_recovery() {
    // Table 3's trend: recovery stays high (and tends to improve) as the
    // number of meanings grows.
    let clean = clean_lake(101);
    let base = InjectionConfig {
        count: 12,
        meanings: 2,
        min_attr_cardinality: 40,
        seed: 8,
    };
    let low = recovery(&clean, base, 12);
    let high = recovery(
        &clean,
        InjectionConfig {
            meanings: 5,
            ..base
        },
        12,
    );
    assert!(
        high + 0.15 >= low,
        "recovery with 5 meanings ({high:.2}) should not collapse below 2 meanings ({low:.2})"
    );
    assert!(high >= 0.6, "recovery with 5 meanings too low: {high:.2}");
}

#[test]
fn higher_cardinality_homographs_are_easier_to_find() {
    // Table 2's trend, checked loosely: restricting injections to large
    // attributes should not make recovery worse.
    let clean = clean_lake(102);
    let max_card = clean
        .catalog
        .attribute_ids()
        .map(|a| clean.catalog.attribute_cardinality(a))
        .max()
        .unwrap();
    let unconstrained = recovery(
        &clean,
        InjectionConfig {
            count: 15,
            meanings: 2,
            min_attr_cardinality: 0,
            seed: 17,
        },
        15,
    );
    let constrained = recovery(
        &clean,
        InjectionConfig {
            count: 15,
            meanings: 2,
            min_attr_cardinality: max_card / 2,
            seed: 17,
        },
        15,
    );
    assert!(
        constrained + 0.2 >= unconstrained,
        "large-attribute injections ({constrained:.2}) should not be much harder than \
         unconstrained ones ({unconstrained:.2})"
    );
    assert!(constrained >= 0.5, "recovery too low: {constrained:.2}");
}

#[test]
fn injection_bookkeeping_matches_ground_truth_rules() {
    // The injected lake's ground truth (derived from attribute classes) must
    // label exactly the injected tokens as homographs.
    let clean = clean_lake(103);
    let config = InjectionConfig {
        count: 8,
        meanings: 3,
        min_attr_cardinality: 0,
        seed: 23,
    };
    let injected = inject_homographs(&clean, config).expect("injection succeeds");
    let homographs = injected.lake.homographs();
    assert_eq!(homographs.len(), 8);
    for token in &injected.injected {
        assert_eq!(homographs.get(token), Some(&3));
    }
}
