//! Controlled homograph-injection study (the TUS-I methodology, §4.3).
//!
//! Run with:
//! ```text
//! cargo run --release --example homograph_injection
//! ```
//!
//! Starts from a lake with its natural homographs removed, injects synthetic
//! homographs with known properties, and measures how reliably DomainNet
//! recovers them in the top of the BC ranking — first as a function of the
//! cardinality of the attributes the homographs live in, then as a function
//! of the number of meanings.

use std::collections::BTreeSet;

use datagen::inject::{inject_homographs, remove_homographs, InjectionConfig};
use datagen::tus::{TusConfig, TusGenerator};
use domainnet::eval::recall_of_expected_in_top_k;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;

fn recover(clean: &datagen::GeneratedLake, config: InjectionConfig) -> Option<(usize, f64)> {
    let injected = inject_homographs(clean, config)?;
    let net = DomainNetBuilder::new().build(&injected.lake.catalog);
    let samples = (net.graph().node_count() / 50).max(200);
    let ranked = net.rank(Measure::approx_bc(samples, config.seed));
    let expected: BTreeSet<String> = injected.injected.iter().cloned().collect();
    Some((
        expected.len(),
        recall_of_expected_in_top_k(&ranked, &expected, config.count),
    ))
}

fn main() {
    let generated = TusGenerator::new(TusConfig {
        seed: 3,
        ..TusConfig::default()
    })
    .generate();
    println!(
        "Generated lake with {} natural homographs; removing them to get a clean baseline…",
        generated.homographs().len()
    );
    let clean = remove_homographs(&generated);
    assert!(clean.homographs().is_empty());

    let max_card = clean
        .catalog
        .attribute_ids()
        .map(|a| clean.catalog.attribute_cardinality(a))
        .max()
        .unwrap_or(0);

    println!("\n-- Recall of 50 injected homographs vs attribute-cardinality threshold --");
    for fraction in [0.0, 0.25, 0.5, 0.75] {
        let threshold = (max_card as f64 * fraction) as usize;
        let config = InjectionConfig {
            count: 50,
            meanings: 2,
            min_attr_cardinality: threshold,
            seed: 11,
        };
        match recover(&clean, config) {
            Some((injected, recall)) => println!(
                "  cardinality >= {:>5}: {:>4.1}% of the {} injected homographs in the top-50",
                threshold,
                100.0 * recall,
                injected
            ),
            None => println!("  cardinality >= {threshold:>5}: not enough eligible attributes"),
        }
    }

    println!("\n-- Recall of 50 injected homographs vs number of meanings --");
    for meanings in [2usize, 4, 6, 8] {
        let config = InjectionConfig {
            count: 50,
            meanings,
            min_attr_cardinality: max_card / 2,
            seed: 13,
        };
        match recover(&clean, config) {
            Some((_, recall)) => println!(
                "  {} meanings: {:>4.1}% of the injected homographs in the top-50",
                meanings,
                100.0 * recall
            ),
            None => println!("  {meanings} meanings: not enough distinct semantic classes"),
        }
    }

    println!("\nExpected shape (paper, Tables 2 & 3): recovery improves with cardinality and");
    println!("with the number of meanings, approaching 100% for large, many-meaning homographs.");
}
