//! How homographs degrade a downstream data-integration task — domain
//! discovery with D4 (§5.5 / Figure 10), and how DomainNet helps.
//!
//! Run with:
//! ```text
//! cargo run --release --example domain_discovery_impact
//! ```
//!
//! Runs the D4 baseline on a clean lake, then on the same lake with injected
//! homographs, showing the growth in discovered domains and in domains
//! assigned per column. Finally it shows the mitigation the paper proposes:
//! detect homographs with DomainNet *first*, remove them, and run D4 on the
//! cleaned lake.

use std::collections::BTreeSet;

use d4::D4Config;
use datagen::inject::{inject_homographs, remove_homographs, InjectionConfig};
use datagen::tus::{TusConfig, TusGenerator};
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;

fn report(label: &str, out: &d4::D4Output) {
    println!(
        "  {label:<28} {} domains, {}/{} columns covered, max {} / avg {:.3} domains per column",
        out.domain_count(),
        out.covered_columns(),
        out.string_columns,
        out.max_domains_per_column(),
        out.avg_domains_per_column()
    );
}

fn main() {
    let generated = TusGenerator::new(TusConfig {
        seed: 21,
        ..TusConfig::default()
    })
    .generate();
    let clean = remove_homographs(&generated);

    println!("D4 on the clean lake (no homographs):");
    let baseline = d4::discover(&clean.catalog, D4Config::default());
    report("clean", &baseline);

    println!("\nD4 after injecting homographs:");
    let mut polluted = None;
    for (count, meanings) in [(50usize, 2usize), (100, 4), (200, 6)] {
        let Some(injected) = inject_homographs(
            &clean,
            InjectionConfig {
                count,
                meanings,
                min_attr_cardinality: 0,
                seed: 5,
            },
        ) else {
            println!("  (could not inject {count} homographs with {meanings} meanings)");
            continue;
        };
        let out = d4::discover(&injected.lake.catalog, D4Config::default());
        report(&format!("{count} injected x {meanings} meanings"), &out);
        if count == 200 {
            polluted = Some(injected);
        }
    }

    // Mitigation: run DomainNet first, drop the detected homographs from the
    // lake, then run D4 on what remains.
    if let Some(injected) = polluted {
        println!("\nMitigation: DomainNet detection -> remove detected values -> D4:");
        let net = DomainNetBuilder::new().build(&injected.lake.catalog);
        let samples = (net.graph().node_count() / 50).max(200);
        let ranked = net.rank(Measure::approx_bc(samples, 9));
        let detected: BTreeSet<String> = ranked
            .iter()
            .take(injected.injected.len())
            .map(|s| s.value.clone())
            .collect();
        let caught = injected
            .injected
            .iter()
            .filter(|t| detected.contains(*t))
            .count();
        println!(
            "  DomainNet flags {} values; {} of the {} injected homographs are among them",
            detected.len(),
            caught,
            injected.injected.len()
        );

        // Build a copy of the lake without the detected values and re-run D4.
        let mut tables = injected.lake.catalog.tables().to_vec();
        for table in &mut tables {
            for column in table.columns_mut() {
                for value in detected.iter() {
                    column.replace_value(value, "");
                }
            }
        }
        let cleaned = lake::catalog::LakeCatalog::from_tables(tables).expect("names unchanged");
        let out = d4::discover(&cleaned, D4Config::default());
        report("after removing detected", &out);
        println!(
            "\nExpected shape (paper): injected homographs inflate the number of discovered\n\
             domains and the domains-per-column statistics; removing detected homographs\n\
             brings D4 back toward its clean-lake behaviour."
        );
    }
}
