//! Detect naturally-occurring homographs in an open-data-style lake and
//! evaluate the ranking against ground truth (the Figure 7 workflow).
//!
//! Run with:
//! ```text
//! cargo run --release --example open_data_lake
//! ```
//!
//! Generates a TUS-like lake (sliced open-data tables with unionability
//! ground truth), runs DomainNet with sampled betweenness centrality, prints
//! the top-ranked values, and reports precision/recall/F1 at several
//! cut-offs. Null-equivalent markers, shared codes, and overlapping numbers
//! surface at the top — exactly the homograph families the paper reports for
//! real open data (§5.3).

use std::collections::BTreeSet;

use datagen::tus::{TusConfig, TusGenerator};
use domainnet::eval::TopKCurve;
use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;

fn main() {
    // 1. Generate an open-data-style lake with ground truth. Swap this for
    //    `lake::loader::load_dir("path/to/csvs", Default::default())` to run
    //    on your own data (without ground truth you still get the ranking).
    let config = TusConfig {
        seed: 7,
        ..TusConfig::default()
    };
    let generated = TusGenerator::new(config).generate();
    let truth: BTreeSet<String> = generated.homograph_set();
    println!(
        "Lake: {} tables, {} attributes, {} values, {} ground-truth homographs",
        generated.catalog.table_count(),
        generated.catalog.attribute_count(),
        generated.catalog.value_count(),
        truth.len()
    );

    // 2. Build the graph and rank with approximate BC (≈1% of nodes sampled).
    let net = DomainNetBuilder::new().build(&generated.catalog);
    let samples = (net.graph().node_count() / 100).max(100);
    println!(
        "Graph: {} candidates, {} attributes, {} edges; sampling {} BC sources\n",
        net.candidate_count(),
        net.attribute_count(),
        net.edge_count(),
        samples
    );
    let ranked = net.rank(Measure::approx_bc(samples, 7));

    // 3. Inspect the head of the ranking.
    println!("Top 15 candidate homographs:");
    for (i, s) in ranked.iter().take(15).enumerate() {
        println!(
            "  {:>2}. {:<28} BC = {:>10.4}  {}",
            i + 1,
            s.value,
            s.score,
            if truth.contains(&s.value) {
                "(homograph)"
            } else {
                ""
            }
        );
    }

    // 4. Evaluate the whole ranking.
    let curve = TopKCurve::sampled(&ranked, &truth, (ranked.len() / 200).max(1));
    println!("\nEvaluation against unionability ground truth (Definition 2):");
    for k in [50usize, 200, truth.len()] {
        if let Some(p) = curve.at_k(k) {
            println!(
                "  top-{:<6} precision {:.3}  recall {:.3}  F1 {:.3}",
                p.k, p.precision, p.recall, p.f1
            );
        }
    }
    if let Some(best) = curve.best_f1() {
        println!("  best F1 {:.3} at k = {}", best.f1, best.k);
    }
}
