//! Quickstart: detect homographs in the paper's running example (Figure 1).
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the four-table running example (donations, zoo populations, car
//! imports, company financials), constructs the DomainNet bipartite graph,
//! and ranks the repeated values by betweenness centrality and by the local
//! clustering coefficient. `Jaguar` and `Puma` — the two homographs — should
//! rise to the top of the BC ranking.

use domainnet::pipeline::DomainNetBuilder;
use domainnet::Measure;

fn main() {
    // 1. A data lake. In practice this would be loaded from a directory of
    //    CSV files with `lake::loader::load_dir`; here we use the built-in
    //    running example from the paper.
    let lake = lake::fixtures::running_example();
    println!(
        "Lake: {} tables, {} attributes, {} distinct values",
        lake.table_count(),
        lake.attribute_count(),
        lake.value_count()
    );

    // 2. Build the DomainNet bipartite graph. Values that occur in a single
    //    attribute cannot be homographs and are pruned by default.
    let net = DomainNetBuilder::new().build(&lake);
    println!(
        "DomainNet graph: {} candidate values, {} attributes, {} edges\n",
        net.candidate_count(),
        net.attribute_count(),
        net.edge_count()
    );

    // 3. Rank candidates by betweenness centrality (homographs first).
    println!("Ranking by betweenness centrality (highest = most homograph-like):");
    for (rank, scored) in net.rank(Measure::exact_bc()).iter().enumerate() {
        println!(
            "  {:>2}. {:<10} BC = {:>8.3}   (in {} attributes, co-occurs with {} values)",
            rank + 1,
            scored.value,
            scored.score,
            scored.attribute_count,
            scored.cardinality
        );
    }

    // 4. The same candidates under the local clustering coefficient
    //    (lowest = most homograph-like). LCC is cheaper but less reliable.
    println!("\nRanking by local clustering coefficient (lowest = most homograph-like):");
    for (rank, scored) in net.rank(Measure::lcc()).iter().enumerate() {
        println!(
            "  {:>2}. {:<10} LCC = {:>6.3}",
            rank + 1,
            scored.value,
            scored.score
        );
    }

    println!("\nGround truth: JAGUAR (animal vs. car maker/company) and PUMA (animal vs.");
    println!("company) are homographs; PANDA and TOYOTA repeat but keep a single meaning.");
}
