//! Offline API-compatible shim for [serde](https://serde.rs).
//!
//! The build container has no access to a crates registry, so this crate
//! provides the subset of serde's surface the workspace actually uses:
//! the [`Serialize`] / [`Deserialize`] traits (over a simple in-memory
//! [`Value`] tree rather than serde's zero-copy visitor architecture) and,
//! behind the `derive` feature, the corresponding derive macros. The sibling
//! `serde_json` shim renders [`Value`] to and from real JSON text, so
//! serialization round-trips behave like the genuine crates.
//!
//! Swap in the real serde by pointing the `serde` entry in the root
//! `Cargo.toml`'s `[workspace.dependencies]` back at the registry once one
//! is reachable.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped data tree: the data model both traits target.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit in `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, map entries).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in a [`Value::Map`]; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Construct an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    fn invalid_type(expected: &str, got: &Value) -> Self {
        Error::custom(format!(
            "invalid type: expected {expected}, got {}",
            got.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------------

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
    )*};
}

impl_ser_signed!(i8, i16, i32, i64, isize);
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($len:literal, $($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::invalid_type(
                        concat!($len, "-element sequence"),
                        value,
                    )),
                }
            }
        }
    };
}

impl_tuple!(2, A.0, B.1);
impl_tuple!(3, A.0, B.1, C.2);
impl_tuple!(4, A.0, B.1, C.2, D.3);
impl_tuple!(5, A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6, A.0, B.1, C.2, D.3, E.4, F.5);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(entries)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and std containers
// ---------------------------------------------------------------------------

fn value_as_i64(value: &Value) -> Result<i64, Error> {
    match value {
        Value::Int(i) => Ok(*i),
        Value::UInt(u) => i64::try_from(*u).map_err(|_| Error::custom("integer out of range")),
        _ => Err(Error::invalid_type("integer", value)),
    }
}

fn value_as_u64(value: &Value) -> Result<u64, Error> {
    match value {
        Value::Int(i) => u64::try_from(*i).map_err(|_| Error::custom("integer out of range")),
        Value::UInt(u) => Ok(*u),
        _ => Err(Error::invalid_type("integer", value)),
    }
}

macro_rules! impl_de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value_as_i64(value)?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let u = value_as_u64(value)?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_de_signed!(i8, i16, i32, i64, isize);
impl_de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(Error::invalid_type("number", value)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::invalid_type("bool", value)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::invalid_type("string", value)),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::invalid_type("single-character string", value)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::invalid_type("sequence", value)),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::invalid_type("map", value)),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::invalid_type("map", value)),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::invalid_type("sequence", value)),
        }
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::invalid_type("sequence", value)),
        }
    }
}

impl<T: Serialize + Eq + Hash + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort so serialization is deterministic across runs.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}
