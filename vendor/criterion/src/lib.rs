//! Offline API-compatible shim for [criterion](https://docs.rs/criterion/0.5).
//!
//! Provides the macros and types the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher`], [`BenchmarkId`], [`Throughput`], [`BatchSize`],
//! [`black_box`]). Instead of criterion's statistical machinery, each
//! benchmark closure is run for a small fixed number of iterations and the
//! mean wall-clock time is printed — enough to smoke-run `cargo bench`
//! offline and to keep the bench targets compiling.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark (after one warm-up call).
const MEASURED_ITERS: u32 = 3;

/// Entry point collecting benchmark functions, mirroring criterion's type.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.into().label, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always uses a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, f);
        self
    }

    /// Benchmark a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, |b| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_bench(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.total / bencher.iters
    } else {
        Duration::ZERO
    };
    println!("  {label}: {mean:?} (mean of {} iters)", bencher.iters);
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += MEASURED_ITERS;
    }

    /// Time `routine` over inputs produced by `setup`; only `routine` is
    /// timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..MEASURED_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Units processed per iteration; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, reported with decimal multiples.
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Collect benchmark functions into a runner function, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
