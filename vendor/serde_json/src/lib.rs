//! Offline API-compatible shim for `serde_json`.
//!
//! Works with the vendored `serde` shim's [`serde::Value`] tree: serializes
//! to RFC 8259 JSON text and parses JSON text back, supporting the functions
//! the workspace uses (`to_string`, `to_string_pretty`, `from_str`).

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_delimited(out, items.len(), '[', ']', indent, depth, |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            })
        }
        Value::Map(entries) => {
            write_delimited(out, entries.len(), '{', '}', indent, depth, |out, i| {
                let (key, item) = &entries[i];
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)
            })
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = f.to_string();
        out.push_str(&text);
        // Keep floats distinguishable from integers, as serde_json does.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json serializes non-finite floats as null.
        out.push_str("null");
    }
}

fn write_delimited(
    out: &mut String,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "malformed array at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "malformed object at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect a following \uXXXX.
                                if !self.consume_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}
