//! Offline API-compatible shim for [rand](https://docs.rs/rand/0.8) 0.8.
//!
//! The build container has no access to a crates registry, so this crate
//! implements the subset of rand's 0.8 API the workspace uses, on top of a
//! deterministic xoshiro256++ generator:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//!   [`Rng::gen_bool`], [`Rng::gen`]
//! * [`seq::SliceRandom`] (`shuffle`, `choose`) and [`seq::index::sample`]
//! * [`distributions::WeightedIndex`] with [`distributions::Distribution`]
//!
//! The streams differ from real rand's (this is a shim, not a port), but are
//! fully deterministic under a fixed seed, which is the property the
//! workspace's determinism tests rely on.

/// The core trait: a source of random `u64`s.
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64`, for reproducible streams.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-friendly random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range` (e.g. `0..10`, `0.0..1.0`,
    /// `1..=6`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // `unit_f64` samples from [0, 1), so p == 1.0 is always true.
        unit_f64(self) < p
    }

    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A `f64` uniform in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, span)` via Lemire-style rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let raw = rng.next_u64();
        if raw <= zone {
            return raw % span;
        }
    }
}

/// Types samplable from a "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Sample one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
///
/// Like real rand, this is blanket-implemented over a [`SampleUniform`]
/// element type so integer-literal ranges (`1..=40`) infer cleanly.
pub trait SampleRange<T> {
    /// Sample a single value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

/// Element types uniformly samplable from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i128 + uniform_u64(rng, span + 1) as i128) as $t
                } else {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u64;
                    (low as i128 + uniform_u64(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty range");
                } else {
                    assert!(low < high, "gen_range: empty range");
                }
                let unit = unit_f64(rng) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 (Blackman & Vigna). Not the same stream as real rand's
    /// `StdRng`, but a high-quality, fully deterministic one.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`, index sampling).
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Choose one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }

    /// Index-sampling without replacement.
    pub mod index {
        use super::super::{uniform_u64, RngCore};

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Convert into a plain `Vec<usize>`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher–Yates shuffle.
        ///
        /// # Panics
        /// Panics if `amount > length`, as real rand does.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "seq::index::sample: amount ({amount}) > length ({length})"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + uniform_u64(rng, (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

/// Probability distributions.
pub mod distributions {
    use super::{unit_f64, RngCore};
    use std::borrow::Borrow;
    use std::fmt;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl fmt::Display for WeightedError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let msg = match self {
                WeightedError::NoItem => "no weights provided",
                WeightedError::InvalidWeight => "a weight is invalid",
                WeightedError::AllWeightsZero => "all weights are zero",
            };
            f.write_str(msg)
        }
    }

    impl std::error::Error for WeightedError {}

    /// Sampling of indices `0..n` proportional to `f64` weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Build a distribution from an iterator of non-negative weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                // NaN fails `is_finite`, so `w < 0.0` is safe here.
                if w < 0.0 || !w.is_finite() {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let target = unit_f64(rng) * self.total;
            // First index whose cumulative weight exceeds the target;
            // partition_point also skips zero-weight entries at the target.
            self.cumulative
                .partition_point(|&c| c <= target)
                .min(self.cumulative.len() - 1)
        }
    }
}
