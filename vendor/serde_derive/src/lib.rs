//! Offline shim for `serde_derive`.
//!
//! Derives `serde::Serialize` / `serde::Deserialize` (the vendored value-tree
//! shim, not real serde) for the shapes this workspace uses: structs with
//! named fields, tuple/newtype structs, and enums with unit, tuple, and
//! struct variants. Supported field attribute: `#[serde(skip)]` (field is
//! omitted on serialize and filled from `Default::default()` on deserialize).
//!
//! Implemented directly on `proc_macro::TokenStream` because `syn`/`quote`
//! are not available offline. Generics are not supported (the workspace
//! derives only on non-generic types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skip attributes (`#[...]`), returning whether any was `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], idx: &mut usize) -> bool {
    let mut skip = false;
    while *idx < tokens.len() {
        match &tokens[*idx] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *idx += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*idx) {
                    if attr_is_serde_skip(&g.stream()) {
                        skip = true;
                    }
                    *idx += 1;
                }
            }
            _ => break,
        }
    }
    skip
}

/// Does an attribute body (the tokens inside `#[...]`) read `serde(skip)`?
fn attr_is_serde_skip(body: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], idx: &mut usize) {
    if matches!(tokens.get(*idx), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *idx += 1;
        if matches!(
            tokens.get(*idx),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *idx += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;
    skip_attributes(&tokens, &mut idx);
    skip_visibility(&tokens, &mut idx);

    let keyword = match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    idx += 1;
    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    idx += 1;
    if matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(&g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(&g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Parse `name: Type, ...` (named-field bodies), honoring `#[serde(skip)]`.
fn parse_named_fields(body: &TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let skip = skip_attributes(&tokens, &mut idx);
        if idx >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut idx);
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        idx += 1;
        match tokens.get(idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => idx += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut idx);
        // Consume the trailing comma, if any.
        if matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            idx += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Advance past one type, stopping at a comma outside angle brackets.
fn skip_type(tokens: &[TokenTree], idx: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*idx) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *idx += 1;
    }
}

/// Count the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                saw_tokens_since_comma = false;
                count += 1;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        skip_attributes(&tokens, &mut idx);
        if idx >= tokens.len() {
            break;
        }
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        idx += 1;
        let kind = match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                idx += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                idx += 1;
                VariantKind::Struct(parse_named_fields(&g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            idx += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(fields)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}\n"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Seq(vec![{}]) }}\n}}\n",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_named_field_inits(fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{}: ::serde::Deserialize::from_value({source}.get({:?}).unwrap_or(&::serde::Value::Null))?,\n",
                f.name, f.name
            ));
        }
    }
    inits
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct { name, fields } => {
            let inits = gen_named_field_inits(fields, "value");
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Seq(items) if items.len() == {arity} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"expected a {arity}-element sequence for `{name}`, got {{}}\", other.kind()))),\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!("::std::result::Result::Ok({name})"),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => return ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vname:?} => return ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             if let ::serde::Value::Seq(items) = inner {{\n\
                             if items.len() == {arity} {{\n\
                             return ::std::result::Result::Ok({name}::{vname}({}));\n\
                             }}\n}}\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"malformed tuple variant `{vname}`\"));\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = gen_named_field_inits(fields, "inner");
                        tagged_arms.push_str(&format!(
                            "{vname:?} => return ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(tag) = value {{\n\
                 match tag.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 }}\n\
                 if let ::serde::Value::Map(entries) = value {{\n\
                 if entries.len() == 1 {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n\
                 }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"unknown or malformed `{name}` variant: {{}}\", value.kind())))"
            )
        }
    };
    let name = match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n}}\n"
    )
}
